"""Tests for adaptive layer-wise compression (Algorithm 1 and friends)."""

import numpy as np
import pytest

from repro.compression import CompressionSpec, make_compressor
from repro.core import (
    ASSIGNERS,
    AdaptiveController,
    CGXConfig,
    LayerStat,
    assignment_error,
    assignment_wire_fraction,
    bayes_assign,
    estimate_relative_error,
    kmeans_assign,
    linear_assign,
    uniform_error,
)


def txl_like_stats():
    """Layer statistics shaped like Transformer-XL: one huge insensitive
    embedding, a blob of medium matrices, a few small sensitive layers."""
    rng = np.random.default_rng(0)
    stats = [LayerStat("embed", 137_000_000,
                       0.25 * float(np.sqrt(0.01 * 137e6)))]
    for i in range(32):
        n = 786_432
        stats.append(LayerStat(f"mat{i}", n, float(np.sqrt(0.01 * n))
                               * (1.0 + 0.05 * rng.random())))
    for i in range(8):
        stats.append(LayerStat(f"small{i}", 2048,
                               2.0 * float(np.sqrt(0.01 * 2048))))
    return stats


# -- error model ------------------------------------------------------------------

def test_error_model_constant_matches_measured_qsgd():
    """The analytic rel_err(b) = C/(2^(b-1)-1) must track the actual
    operator within ~15% — the adaptive solvers rely on it."""
    rng = np.random.default_rng(1)
    x = rng.normal(size=65_536).astype(np.float32)
    for bits in [3, 4, 6, 8]:
        comp = make_compressor(
            CompressionSpec("qsgd", bits=bits, bucket_size=128))
        restored = comp.roundtrip(x, np.random.default_rng(0))
        measured = float(np.linalg.norm(x - restored) / np.linalg.norm(x))
        predicted = estimate_relative_error(bits)
        assert measured == pytest.approx(predicted, rel=0.15), bits


def test_estimate_relative_error_monotone():
    errs = [estimate_relative_error(b) for b in range(2, 9)]
    assert errs == sorted(errs, reverse=True)
    with pytest.raises(ValueError):
        estimate_relative_error(1)


def test_uniform_error_definition():
    stats = txl_like_stats()
    bits = {s.name: 4 for s in stats}
    assert uniform_error(stats, 4) == pytest.approx(
        assignment_error(stats, bits))


# -- assignment algorithms -----------------------------------------------------------

@pytest.mark.parametrize("assigner", list(ASSIGNERS.values()),
                         ids=list(ASSIGNERS))
def test_assignments_respect_error_budget(assigner):
    stats = txl_like_stats()
    for alpha in [1.5, 2.0, 3.0]:
        bits = assigner(stats, alpha=alpha)
        assert set(bits) == {s.name for s in stats}
        assert assignment_error(stats, bits) <= alpha * uniform_error(stats, 4) \
            * (1 + 1e-9)


@pytest.mark.parametrize("assigner", list(ASSIGNERS.values()),
                         ids=list(ASSIGNERS))
def test_assignments_never_worse_than_static(assigner):
    stats = txl_like_stats()
    bits = assigner(stats, alpha=2.0)
    assert assignment_wire_fraction(stats, bits) <= 1.0 + 1e-9


def test_kmeans_compresses_the_embedding_hardest():
    """Algorithm 1's headline behaviour: large low-sensitivity layers
    (embeddings) get the lowest bit-widths."""
    stats = txl_like_stats()
    bits = kmeans_assign(stats, alpha=3.0)
    assert bits["embed"] <= min(bits[f"mat{i}"] for i in range(32))
    assert bits["embed"] <= 3


def test_kmeans_saves_bandwidth():
    stats = txl_like_stats()
    frac = assignment_wire_fraction(stats, kmeans_assign(stats, alpha=3.0))
    assert frac < 0.8  # paper Table 7: 0.68 for TXL


def test_kmeans_beats_linear_on_compression():
    """Table 7 ordering: kmeans >= bayes > linear in achieved savings."""
    stats = txl_like_stats()
    k = assignment_wire_fraction(stats, kmeans_assign(stats, alpha=2.5))
    l = assignment_wire_fraction(stats, linear_assign(stats, alpha=2.5))
    assert k <= l + 1e-9


def test_bayes_deterministic_given_seed():
    stats = txl_like_stats()
    a = bayes_assign(stats, alpha=2.0, seed=3)
    b = bayes_assign(stats, alpha=2.0, seed=3)
    assert a == b


def test_empty_stats():
    for assigner in ASSIGNERS.values():
        assert assigner([], alpha=2.0) == {}


def test_assignments_use_allowed_bitwidths_only():
    stats = txl_like_stats()
    ladder = (3, 5, 8)
    for assigner in ASSIGNERS.values():
        bits = assigner(stats, bitwidths=ladder, alpha=2.0)
        assert set(bits.values()) <= set(ladder)


def test_small_sensitive_layers_get_high_bits_under_kmeans():
    stats = txl_like_stats()
    bits = kmeans_assign(stats, alpha=3.0)
    small_bits = [bits[f"small{i}"] for i in range(8)]
    assert min(small_bits) >= bits["embed"]


# -- controller -----------------------------------------------------------------

def fake_grads(rng):
    return {
        "embed.weight": rng.normal(scale=0.01,
                                   size=(2000, 16)).astype(np.float32),
        "fc.weight": rng.normal(size=(64, 64)).astype(np.float32),
        "fc.bias": rng.normal(size=64).astype(np.float32),
    }


def test_controller_reassigns_on_period():
    config = CGXConfig.cgx_default()
    controller = AdaptiveController(config, method="kmeans", period=3)
    rng = np.random.default_rng(0)
    assert not controller.observe(fake_grads(rng))
    assert not controller.observe(fake_grads(rng))
    assert controller.observe(fake_grads(rng))  # period hit
    assert controller.reassign_count == 1
    assert "embed.weight" in config.per_layer
    spec = config.per_layer["embed.weight"]
    assert spec.method == "qsgd"


def test_controller_skips_filtered_layers():
    config = CGXConfig.cgx_default()
    controller = AdaptiveController(config, period=1)
    rng = np.random.default_rng(1)
    controller.observe(fake_grads(rng))
    assert "fc.bias" not in controller.assignments
    assert "fc.bias" not in config.per_layer


def test_controller_clears_accumulators_after_reassign():
    config = CGXConfig.cgx_default()
    controller = AdaptiveController(config, period=1)
    controller.observe(fake_grads(np.random.default_rng(2)))
    assert not controller._accumulated


def test_controller_unknown_method():
    with pytest.raises(KeyError):
        AdaptiveController(CGXConfig.cgx_default(), method="simulated-annealing")


def test_controller_bucket_sizes_follow_bits():
    config = CGXConfig.cgx_default()
    controller = AdaptiveController(config, period=1, method="kmeans")
    controller.observe(fake_grads(np.random.default_rng(3)))
    for name, bits in controller.assignments.items():
        spec = config.per_layer[name]
        assert spec.bits == bits

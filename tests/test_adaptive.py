"""Tests for adaptive layer-wise compression (Algorithm 1 and friends)."""

import numpy as np
import pytest

from repro.compression import CompressionSpec, make_compressor
from repro.core import (
    ASSIGNERS,
    AdaptiveController,
    CGXConfig,
    LayerStat,
    assignment_error,
    assignment_wire_fraction,
    bayes_assign,
    estimate_relative_error,
    kmeans_assign,
    linear_assign,
    uniform_error,
)


def txl_like_stats():
    """Layer statistics shaped like Transformer-XL: one huge insensitive
    embedding, a blob of medium matrices, a few small sensitive layers."""
    rng = np.random.default_rng(0)
    stats = [LayerStat("embed", 137_000_000,
                       0.25 * float(np.sqrt(0.01 * 137e6)))]
    for i in range(32):
        n = 786_432
        stats.append(LayerStat(f"mat{i}", n, float(np.sqrt(0.01 * n))
                               * (1.0 + 0.05 * rng.random())))
    for i in range(8):
        stats.append(LayerStat(f"small{i}", 2048,
                               2.0 * float(np.sqrt(0.01 * 2048))))
    return stats


# -- error model ------------------------------------------------------------------

def test_error_model_constant_matches_measured_qsgd():
    """The analytic rel_err(b) = C/(2^(b-1)-1) must track the actual
    operator within ~15% — the adaptive solvers rely on it."""
    rng = np.random.default_rng(1)
    x = rng.normal(size=65_536).astype(np.float32)
    for bits in [3, 4, 6, 8]:
        comp = make_compressor(
            CompressionSpec("qsgd", bits=bits, bucket_size=128))
        restored = comp.roundtrip(x, np.random.default_rng(0))
        measured = float(np.linalg.norm(x - restored) / np.linalg.norm(x))
        predicted = estimate_relative_error(bits)
        assert measured == pytest.approx(predicted, rel=0.15), bits


def test_estimate_relative_error_monotone():
    errs = [estimate_relative_error(b) for b in range(2, 9)]
    assert errs == sorted(errs, reverse=True)
    with pytest.raises(ValueError):
        estimate_relative_error(1)


def test_uniform_error_definition():
    stats = txl_like_stats()
    bits = {s.name: 4 for s in stats}
    assert uniform_error(stats, 4) == pytest.approx(
        assignment_error(stats, bits))


# -- assignment algorithms -----------------------------------------------------------

@pytest.mark.parametrize("assigner", list(ASSIGNERS.values()),
                         ids=list(ASSIGNERS))
def test_assignments_respect_error_budget(assigner):
    stats = txl_like_stats()
    for alpha in [1.5, 2.0, 3.0]:
        bits = assigner(stats, alpha=alpha)
        assert set(bits) == {s.name for s in stats}
        assert assignment_error(stats, bits) <= alpha * uniform_error(stats, 4) \
            * (1 + 1e-9)


@pytest.mark.parametrize("assigner", list(ASSIGNERS.values()),
                         ids=list(ASSIGNERS))
def test_assignments_never_worse_than_static(assigner):
    stats = txl_like_stats()
    bits = assigner(stats, alpha=2.0)
    assert assignment_wire_fraction(stats, bits) <= 1.0 + 1e-9


def test_kmeans_compresses_the_embedding_hardest():
    """Algorithm 1's headline behaviour: large low-sensitivity layers
    (embeddings) get the lowest bit-widths."""
    stats = txl_like_stats()
    bits = kmeans_assign(stats, alpha=3.0)
    assert bits["embed"] <= min(bits[f"mat{i}"] for i in range(32))
    assert bits["embed"] <= 3


def test_kmeans_saves_bandwidth():
    stats = txl_like_stats()
    frac = assignment_wire_fraction(stats, kmeans_assign(stats, alpha=3.0))
    assert frac < 0.8  # paper Table 7: 0.68 for TXL


def test_kmeans_beats_linear_on_compression():
    """Table 7 ordering: kmeans >= bayes > linear in achieved savings."""
    stats = txl_like_stats()
    k = assignment_wire_fraction(stats, kmeans_assign(stats, alpha=2.5))
    l = assignment_wire_fraction(stats, linear_assign(stats, alpha=2.5))
    assert k <= l + 1e-9


def test_bayes_deterministic_given_seed():
    stats = txl_like_stats()
    a = bayes_assign(stats, alpha=2.0, seed=3)
    b = bayes_assign(stats, alpha=2.0, seed=3)
    assert a == b


def test_empty_stats():
    for assigner in ASSIGNERS.values():
        assert assigner([], alpha=2.0) == {}


def test_assignments_use_allowed_bitwidths_only():
    stats = txl_like_stats()
    ladder = (3, 5, 8)
    for assigner in ASSIGNERS.values():
        bits = assigner(stats, bitwidths=ladder, alpha=2.0)
        assert set(bits.values()) <= set(ladder)


def test_small_sensitive_layers_get_high_bits_under_kmeans():
    stats = txl_like_stats()
    bits = kmeans_assign(stats, alpha=3.0)
    small_bits = [bits[f"small{i}"] for i in range(8)]
    assert min(small_bits) >= bits["embed"]


# -- controller -----------------------------------------------------------------

def fake_grads(rng):
    return {
        "embed.weight": rng.normal(scale=0.01,
                                   size=(2000, 16)).astype(np.float32),
        "fc.weight": rng.normal(size=(64, 64)).astype(np.float32),
        "fc.bias": rng.normal(size=64).astype(np.float32),
    }


def test_controller_reassigns_on_period():
    config = CGXConfig.cgx_default()
    controller = AdaptiveController(config, method="kmeans", period=3)
    rng = np.random.default_rng(0)
    assert not controller.observe(fake_grads(rng))
    assert not controller.observe(fake_grads(rng))
    assert controller.observe(fake_grads(rng))  # period hit
    assert controller.reassign_count == 1
    assert "embed.weight" in config.per_layer
    spec = config.per_layer["embed.weight"]
    assert spec.method == "qsgd"


def test_controller_skips_filtered_layers():
    config = CGXConfig.cgx_default()
    controller = AdaptiveController(config, period=1)
    rng = np.random.default_rng(1)
    controller.observe(fake_grads(rng))
    assert "fc.bias" not in controller.assignments
    assert "fc.bias" not in config.per_layer


def test_controller_clears_accumulators_after_reassign():
    config = CGXConfig.cgx_default()
    controller = AdaptiveController(config, period=1)
    controller.observe(fake_grads(np.random.default_rng(2)))
    assert not controller._accumulated


def test_controller_unknown_method():
    with pytest.raises(KeyError):
        AdaptiveController(CGXConfig.cgx_default(), method="simulated-annealing")


def test_controller_bucket_sizes_follow_bits():
    config = CGXConfig.cgx_default()
    controller = AdaptiveController(config, period=1, method="kmeans")
    controller.observe(fake_grads(np.random.default_rng(3)))
    for name, bits in controller.assignments.items():
        spec = config.per_layer[name]
        assert spec.bits == bits


# -- exact certification hooks (plan-certifier substrate) ---------------------

def test_exact_certification_agrees_with_float_budget():
    from repro.core import certify_assignment

    stats = txl_like_stats()
    for method, assign in ASSIGNERS.items():
        for alpha in (1.5, 2.0, 3.0):
            bits = assign(stats, alpha=alpha)
            assert certify_assignment(stats, bits, alpha), (method, alpha)


def test_exact_uniform_error_matches_float_model():
    from fractions import Fraction

    from repro.core import exact_uniform_error_sq

    stats = txl_like_stats()
    exact = exact_uniform_error_sq(stats, 4)
    approx = Fraction(uniform_error(stats, 4)) ** 2
    assert abs(float(exact - approx)) / float(exact) < 1e-9


def test_exact_relative_error_rejects_degenerate_bits():
    from repro.core import exact_relative_error_sq

    with pytest.raises(ValueError):
        exact_relative_error_sq(1)


# -- brute force --------------------------------------------------------------

def test_brute_force_beats_or_matches_every_heuristic():
    from repro.core import assignment_cost_bits, brute_force_assign

    stats = txl_like_stats()[:10]
    for alpha in (1.5, 2.0, 3.0):
        optimum = brute_force_assign(stats, alpha=alpha)
        opt_cost = assignment_cost_bits(stats, optimum)
        for method, assign in ASSIGNERS.items():
            cost = assignment_cost_bits(stats, assign(stats, alpha=alpha))
            assert opt_cost <= cost, (method, alpha)


def test_brute_force_optimum_is_feasible():
    from repro.core import brute_force_assign, certify_assignment

    stats = txl_like_stats()[:8]
    optimum = brute_force_assign(stats, alpha=1.5)
    assert certify_assignment(stats, optimum, 1.5)


def test_brute_force_rejects_oversized_instances():
    from repro.core import brute_force_assign

    stats = [LayerStat(f"l{i}", 100, 1.0) for i in range(17)]
    with pytest.raises(ValueError):
        brute_force_assign(stats, max_layers=16)


def test_brute_force_matches_exhaustive_enumeration():
    from itertools import product

    from repro.core import (assignment_cost_bits, brute_force_assign,
                            certify_assignment)

    rng = np.random.default_rng(11)
    stats = [LayerStat(f"l{i}", int(rng.integers(100, 100_000)),
                       float(rng.uniform(0.1, 5.0))) for i in range(5)]
    widths = (2, 4, 8)
    best, best_cost = None, None
    for combo in product(widths, repeat=len(stats)):
        bits = {s.name: b for s, b in zip(stats, combo)}
        if not certify_assignment(stats, bits, 2.0):
            continue
        cost = assignment_cost_bits(stats, bits)
        if best_cost is None or cost < best_cost:
            best, best_cost = bits, cost
    fast = brute_force_assign(stats, bitwidths=widths, alpha=2.0)
    assert assignment_cost_bits(stats, fast) == best_cost


# -- bits -> bucket resolution ------------------------------------------------

def test_resolve_bucket_known_widths_match_table():
    from repro.core import resolve_bucket
    from repro.core.adaptive import BUCKET_FOR_BITS

    for bits, bucket in BUCKET_FOR_BITS.items():
        assert resolve_bucket(bits) == bucket


def test_resolve_bucket_falls_back_to_nearest_defined():
    from repro.core import resolve_bucket

    assert resolve_bucket(7) == 512   # nearest defined is 8 (ties widen)
    assert resolve_bucket(10) == 512  # above the table: clamp to widest


def test_resolve_bucket_rejects_degenerate_bits():
    from repro.core import resolve_bucket

    for bits in (0, 1, -3):
        with pytest.raises(ValueError, match="quantization levels"):
            resolve_bucket(bits)


def test_finalize_rejects_sub_two_bit_assignments():
    from repro.core.adaptive import _finalize

    stats = txl_like_stats()[:4]
    with pytest.raises(ValueError, match="2-bit floor"):
        _finalize(stats, {s.name: 1 for s in stats}, 2.0, (1, 2, 4))


def test_controller_buckets_resolve_for_every_default_width():
    from repro.core import resolve_bucket
    from repro.core.adaptive import DEFAULT_BITWIDTHS

    for bits in DEFAULT_BITWIDTHS:
        bucket = resolve_bucket(bits)
        CompressionSpec("qsgd", bits=bits, bucket_size=bucket)

"""Unit tests for the crash-consistent durable checkpoint store."""

import os
import zlib

import numpy as np
import pytest

from repro.faults import CheckpointCorrupt, CheckpointStore
from repro.faults.store import MAGIC, SCHEMA_VERSION


def sample_state(seed=0):
    rng = np.random.default_rng(seed)
    return {
        "step": 7,
        "weights": {"fc.w": rng.normal(size=(8, 4)).astype(np.float32),
                    "fc.b": rng.normal(size=4).astype(np.float32)},
        "velocity": [rng.normal(size=3).astype(np.float64)],
        "cursor": 123,
        "label": "ckpt",
        "flag": True,
        "nothing": None,
        "big": 2 ** 90,          # RNG states carry >64-bit integers
    }


def assert_state_equal(a, b):
    assert set(a) == set(b)
    for key, value in a.items():
        if isinstance(value, np.ndarray):
            np.testing.assert_array_equal(value, b[key])
            assert value.dtype == b[key].dtype
        elif isinstance(value, dict):
            assert_state_equal(value, b[key])
        elif isinstance(value, list):
            for x, y in zip(value, b[key]):
                np.testing.assert_array_equal(x, y)
        else:
            assert value == b[key]


def test_save_load_round_trip(tmp_path):
    store = CheckpointStore(str(tmp_path))
    state = sample_state()
    path = store.save(state, 7)
    assert os.path.exists(path) and not path.endswith(".tmp")
    loaded = store.load(7)
    assert_state_equal({**state, "weights": state["weights"]},
                       {**loaded, "weights": loaded["weights"]})
    # arrays are fresh copies, not views into a shared buffer
    loaded["weights"]["fc.w"][0, 0] = 99.0
    assert store.load(7)["weights"]["fc.w"][0, 0] != 99.0


def test_retention_keeps_last_k(tmp_path):
    store = CheckpointStore(str(tmp_path), keep=2)
    for step in (5, 10, 15, 20):
        store.save({"x": np.arange(step, dtype=np.float32)}, step)
    assert store.steps() == [15, 20]


def test_load_latest_falls_back_past_corruption(tmp_path):
    store = CheckpointStore(str(tmp_path), keep=3)
    for step in (5, 10, 15):
        store.save({"x": np.full(6, step, dtype=np.float32)}, step)
    # torn write: newest file truncated mid-payload
    path = store.path_for(15)
    with open(path, "rb+") as fh:
        fh.truncate(os.path.getsize(path) - 7)
    seen = []
    step, state = store.load_latest(on_corrupt=lambda s, e: seen.append(s))
    assert step == 10 and seen == [15]
    np.testing.assert_array_equal(state["x"], np.full(6, 10, np.float32))


def test_garbled_payload_byte_is_detected(tmp_path):
    store = CheckpointStore(str(tmp_path))
    store.save({"x": np.arange(64, dtype=np.float32)}, 1)
    path = store.path_for(1)
    raw = bytearray(open(path, "rb").read())
    raw[-13] ^= 0x01                       # single bit of bit-rot
    open(path, "wb").write(bytes(raw))
    with pytest.raises(CheckpointCorrupt, match="CRC"):
        store.load(1)


def test_garbled_manifest_is_detected(tmp_path):
    store = CheckpointStore(str(tmp_path))
    store.save({"x": np.zeros(4, dtype=np.float32)}, 1)
    path = store.path_for(1)
    raw = bytearray(open(path, "rb").read())
    raw[20] ^= 0xFF                        # inside the manifest JSON
    open(path, "wb").write(bytes(raw))
    with pytest.raises(CheckpointCorrupt):
        store.load(1)


def test_bad_magic_and_schema_are_detected(tmp_path):
    store = CheckpointStore(str(tmp_path))
    store.save({"x": np.zeros(2, dtype=np.float32)}, 1)
    path = store.path_for(1)
    raw = bytearray(open(path, "rb").read())
    assert raw[:4] == MAGIC
    raw[:4] = b"XXXX"
    open(path, "wb").write(bytes(raw))
    with pytest.raises(CheckpointCorrupt, match="magic"):
        store.load(1)

    # a future schema version must be refused, not misread
    import json
    state = {"x": np.zeros(2, dtype=np.float32)}
    store.save(state, 2)
    path = store.path_for(2)
    raw = open(path, "rb").read()
    mlen = int.from_bytes(raw[4:12], "little")
    manifest = json.loads(raw[12:12 + mlen])
    assert manifest["schema"] == SCHEMA_VERSION
    manifest["schema"] = SCHEMA_VERSION + 1
    new_manifest = json.dumps(manifest, sort_keys=True).encode()
    rebuilt = (MAGIC + len(new_manifest).to_bytes(8, "little") + new_manifest
               + zlib.crc32(new_manifest).to_bytes(4, "little")
               + raw[12 + mlen + 4:])
    open(path, "wb").write(rebuilt)
    with pytest.raises(CheckpointCorrupt, match="schema"):
        store.load(2)


def test_stray_tmp_is_invisible_and_swept(tmp_path):
    store = CheckpointStore(str(tmp_path))
    stray = tmp_path / "ckpt-00000009.ckpt.tmp"
    stray.write_bytes(b"killed mid-write")
    assert store.steps() == []             # never visible as a checkpoint
    assert store.load_latest() is None
    store.save({"x": np.ones(3, dtype=np.float32)}, 12)
    assert not stray.exists()              # swept by the next save


def test_unsupported_state_type_is_rejected(tmp_path):
    store = CheckpointStore(str(tmp_path))
    with pytest.raises(TypeError):
        store.save({"bad": object()}, 1)
    with pytest.raises(ValueError):
        store.save({"__blob__": 1}, 1)
    with pytest.raises(ValueError):
        CheckpointStore(str(tmp_path), keep=0)


def test_rng_state_round_trips_bit_exactly(tmp_path):
    store = CheckpointStore(str(tmp_path))
    rng = np.random.default_rng(42)
    rng.random(100)
    store.save({"rng": rng.bit_generator.state}, 1)
    restored = np.random.default_rng(0)
    restored.bit_generator.state = store.load(1)["rng"]
    assert restored.random(16).tolist() == rng.random(16).tolist()

"""Tests for bucketed QSGD quantization and bit packing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compression import CompressionSpec, QSGDCompressor, make_compressor
from repro.compression.qsgd import pack_codes, unpack_codes


@given(
    codes=st.lists(st.integers(0, 255), min_size=0, max_size=200),
    bits=st.integers(1, 8),
)
@settings(max_examples=60, deadline=None)
def test_pack_unpack_roundtrip(codes, bits):
    arr = np.array([c % (1 << bits) for c in codes], dtype=np.uint8)
    packed = pack_codes(arr, bits)
    restored = unpack_codes(packed, bits, len(arr))
    np.testing.assert_array_equal(restored, arr)


def test_pack_achieves_bit_density():
    codes = np.zeros(1000, dtype=np.uint8)
    assert pack_codes(codes, 4).size == 500
    assert pack_codes(codes, 2).size == 250
    assert pack_codes(codes, 8).size == 1000


def test_pack_rejects_bad_bits():
    with pytest.raises(ValueError):
        pack_codes(np.zeros(4, dtype=np.uint8), 9)


def _spec(bits=4, bucket=128):
    return CompressionSpec("qsgd", bits=bits, bucket_size=bucket)


def test_roundtrip_preserves_shape_and_dtype():
    comp = make_compressor(_spec())
    rng = np.random.default_rng(0)
    x = rng.normal(size=(13, 7)).astype(np.float32)
    out = comp.roundtrip(x, rng)
    assert out.shape == x.shape
    assert out.dtype == np.float32


def test_zero_vector_exact():
    comp = make_compressor(_spec())
    x = np.zeros(300, dtype=np.float32)
    np.testing.assert_array_equal(comp.roundtrip(x, np.random.default_rng(0)),
                                  x)


def test_quantization_is_unbiased():
    rng = np.random.default_rng(1)
    x = rng.normal(size=512).astype(np.float32)
    comp = make_compressor(_spec())
    mean = np.zeros_like(x)
    trials = 400
    for i in range(trials):
        mean += comp.roundtrip(x, np.random.default_rng(i))
    mean /= trials
    bias = float(np.abs(mean - x).mean())
    assert bias < 0.02 * float(np.abs(x).mean()) + 0.01


def test_error_decreases_with_bits():
    rng = np.random.default_rng(2)
    x = rng.normal(size=4096).astype(np.float32)
    errors = []
    for bits in [2, 3, 4, 6, 8]:
        comp = make_compressor(_spec(bits=bits))
        restored = comp.roundtrip(x, np.random.default_rng(0))
        errors.append(float(np.linalg.norm(x - restored)))
    assert errors == sorted(errors, reverse=True)


def test_larger_buckets_increase_error():
    """The paper's bucket trade-off: bigger buckets, higher error."""
    rng = np.random.default_rng(3)
    x = rng.normal(size=8192).astype(np.float32)
    small = make_compressor(_spec(bucket=64)).error_norm(
        x, np.random.default_rng(0))
    large = make_compressor(_spec(bucket=4096)).error_norm(
        x, np.random.default_rng(0))
    assert small < large


def test_larger_buckets_reduce_wire_size():
    small = _spec(bucket=64).wire_bytes(8192)
    large = _spec(bucket=4096).wire_bytes(8192)
    assert large < small


def test_wire_bytes_exact_accounting():
    spec = _spec(bits=4, bucket=128)
    # 1000 elements: 500 payload bytes + ceil(1000/128)=8 norms * 4
    assert spec.wire_bytes(1000) == 500 + 8 * 4
    comp = make_compressor(spec)
    compressed = comp.compress(np.ones(1000, dtype=np.float32),
                               np.random.default_rng(0))
    payload = compressed.payload
    actual = payload["codes"].nbytes + payload["norms"].nbytes
    assert actual == spec.wire_bytes(1000)


def test_values_bounded_by_bucket_max():
    rng = np.random.default_rng(4)
    x = rng.normal(size=256).astype(np.float32)
    comp = make_compressor(_spec())
    out = comp.roundtrip(x, rng)
    assert float(np.abs(out).max()) <= float(np.abs(x).max()) * (1 + 1e-5)


def test_non_multiple_of_bucket_size():
    comp = make_compressor(_spec(bucket=128))
    rng = np.random.default_rng(5)
    x = rng.normal(size=130).astype(np.float32)  # 2 buckets, tail of 2
    out = comp.roundtrip(x, rng)
    assert out.shape == x.shape
    err = np.linalg.norm(out - x) / np.linalg.norm(x)
    assert err < 0.5


@given(bits=st.integers(2, 8), n=st.integers(1, 600))
@settings(max_examples=40, deadline=None)
def test_roundtrip_error_bounded_property(bits, n):
    """Relative error is bounded by the quantization step size."""
    rng = np.random.default_rng(n)
    x = rng.normal(size=n).astype(np.float32)
    comp = QSGDCompressor(CompressionSpec("qsgd", bits=bits, bucket_size=64))
    out = comp.roundtrip(x, np.random.default_rng(0))
    levels = 2 ** (bits - 1) - 1
    # per-element error at most one grid step of its bucket's max
    step = np.abs(x).max() / levels
    assert float(np.abs(out - x).max()) <= step + 1e-5


def test_spec_validation():
    with pytest.raises(ValueError):
        CompressionSpec("qsgd", bits=1)
    with pytest.raises(ValueError):
        CompressionSpec("qsgd", bits=9)
    with pytest.raises(ValueError):
        CompressionSpec("qsgd", bucket_size=0)


def test_huge_bucket_size_does_not_overallocate():
    """Regression: GRACE-style bucket_size=2^30 on a small tensor must
    quantize with a single tensor-sized bucket, not allocate a
    bucket_size-padded (4 GB) buffer.  The whole suite once died on
    this via the OOM killer."""
    spec = CompressionSpec("qsgd", bits=4, bucket_size=1 << 30)
    comp = make_compressor(spec)
    rng = np.random.default_rng(0)
    x = rng.normal(size=65_536).astype(np.float32)
    compressed = comp.compress(x, rng)
    assert compressed.payload["norms"].size == 1  # one global scale
    out = comp.decompress(compressed)
    assert out.shape == x.shape
    rel = np.linalg.norm(out - x) / np.linalg.norm(x)
    assert rel < 1.0

"""Tests for the data-parallel trainer, tasks, recipes and metrics."""

import numpy as np
import pytest

from repro.core import AdaptiveController, CGXConfig
from repro.nn import build_model
from repro.training import (
    DataParallelTrainer,
    RECIPES,
    get_recipe,
    lm_perplexity,
    make_task,
    span_f1,
    top1_accuracy,
    train_family,
)


# -- metrics ---------------------------------------------------------------------

def test_top1_accuracy_on_perfect_model():
    class Oracle:
        def eval(self):
            return self

        def train(self, mode=True):
            return self

        def __call__(self, x):
            logits = np.zeros((len(x), 3))
            logits[np.arange(len(x)), x.astype(int)] = 1.0
            return logits

    x = np.array([0, 1, 2, 1])
    assert top1_accuracy(Oracle(), x, x) == 1.0
    assert top1_accuracy(Oracle(), x, np.array([1, 1, 1, 1])) == 0.5


def test_span_f1_exact_and_partial():
    class SpanModel:
        def __init__(self, starts, ends, seq):
            self.starts, self.ends, self.seq = starts, ends, seq

        def eval(self):
            return self

        def train(self, mode=True):
            return self

        def __call__(self, tokens):
            logits = np.full((len(tokens), self.seq, 2), -10.0)
            for i, (s, e) in enumerate(zip(self.starts, self.ends)):
                logits[i, s, 0] = 10.0
                logits[i, e, 1] = 10.0
            return logits

    tokens = np.zeros((2, 8))
    model = SpanModel([2, 4], [3, 6], 8)
    # exact matches -> F1 = 1
    assert span_f1(model, tokens, np.array([2, 4]), np.array([3, 6])) == 1.0
    # half-overlapping span -> F1 between 0 and 1
    partial = span_f1(model, tokens, np.array([3, 4]), np.array([4, 6]))
    assert 0.0 < partial < 1.0
    # inverted prediction scores zero
    inverted = SpanModel([5, 5], [2, 2], 8)
    assert span_f1(inverted, tokens, np.array([1, 1]),
                   np.array([2, 2])) == 0.0


def test_lm_perplexity_uniform_model():
    class Uniform:
        def eval(self):
            return self

        def train(self, mode=True):
            return self

        def __call__(self, tokens):
            return np.zeros(tokens.shape + (16,))

    tokens = np.zeros((2, 4), dtype=np.int64)
    ppl = lm_perplexity(Uniform(), tokens, tokens)
    assert ppl == pytest.approx(16.0, rel=1e-3)


# -- tasks / recipes --------------------------------------------------------------

def test_recipes_cover_all_families():
    assert set(RECIPES) >= {"resnet50", "vgg16", "vit", "transformer_xl",
                            "gpt2", "bert", "mlp"}


def test_recipe_bucket_sizes_match_paper():
    """Section 6.1: 1024 for CNNs, 128 for Transformers."""
    assert get_recipe("resnet50").bucket_size == 1024
    assert get_recipe("vgg16").bucket_size == 1024
    assert get_recipe("transformer_xl").bucket_size == 128
    assert get_recipe("bert").bucket_size == 128


def test_unknown_recipe():
    with pytest.raises(KeyError):
        get_recipe("resnet18")


@pytest.mark.parametrize("family", ["mlp", "vit", "transformer_xl", "bert"])
def test_task_batches_and_eval(family):
    recipe = get_recipe(family)
    task = make_task(family, batch_size=8, **recipe.kwargs())
    batch = task.sample_batch(np.random.default_rng(0))
    model = task.build_model(0)
    logits = model(batch[0])
    loss, grad = task.loss_and_grad(logits, batch)
    assert np.isfinite(loss)
    assert grad.shape == logits.shape
    metric = task.evaluate(model)
    assert np.isfinite(metric)


def test_unknown_task():
    with pytest.raises(KeyError):
        make_task("segmentation")


# -- trainer ------------------------------------------------------------------------

def test_trainer_learns_and_stays_in_sync():
    result = train_family("mlp", world_size=4,
                          config=CGXConfig.cgx_default(), steps=60,
                          eval_every=30)
    assert result.final_metric > 0.9
    assert result.compression_ratio > 1.5
    assert len(result.history) == 2


def test_compressed_training_matches_baseline_within_tolerance():
    """Table 3 in miniature: 4-bit CGX recovers the baseline metric
    within the paper's 1% band (here: small tolerance on a synthetic
    task)."""
    base = train_family("mlp", world_size=2, config=None, steps=80)
    cgx = train_family("mlp", world_size=2,
                       config=CGXConfig.cgx_default(), steps=80)
    assert abs(base.final_metric - cgx.final_metric) < 0.02


def test_trainer_grad_clipping_path():
    recipe = get_recipe("transformer_xl")
    assert recipe.grad_clip > 0
    result = train_family("transformer_xl", world_size=2,
                          config=CGXConfig.cgx_default(), steps=20,
                          eval_every=20)
    assert np.isfinite(result.final_metric)


def test_trainer_with_adaptive_controller():
    config = CGXConfig.cgx_default()
    task = make_task("mlp", batch_size=16)
    controller = AdaptiveController(config, method="kmeans", period=5)
    trainer = DataParallelTrainer(task, world_size=2, config=config,
                                  recipe=get_recipe("mlp"),
                                  adaptive=controller)
    trainer.train(steps=12, eval_every=12)
    assert controller.reassign_count == 2
    assert trainer.in_sync()


def test_trainer_replicas_identical_after_training():
    task = make_task("mlp", batch_size=16)
    trainer = DataParallelTrainer(task, world_size=3,
                                  config=CGXConfig.cgx_default(),
                                  recipe=get_recipe("mlp"))
    trainer.train(steps=10, eval_every=10)
    assert trainer.in_sync()


def test_trainer_wire_accounting_grows():
    task = make_task("mlp", batch_size=16)
    trainer = DataParallelTrainer(task, world_size=2,
                                  config=CGXConfig.cgx_default(),
                                  recipe=get_recipe("mlp"))
    result = trainer.train(steps=5, eval_every=5)
    assert result.wire_bytes_total > 0
    assert result.steps == 5

"""Tests for the step-time performance model against the paper's shapes."""

import pytest

from repro.cluster import get_machine, make_cluster
from repro.compression import CompressionSpec
from repro.core import CGXConfig
from repro.core.qnccl import qnccl_config
from repro.models import build_spec
from repro.training import (
    simulate_machine_step,
    simulate_step,
    single_gpu_step_time,
)


RTX = get_machine("rtx3090-8x")
DGX = get_machine("dgx1")


def run(machine, model, config, **kwargs):
    return simulate_machine_step(machine, build_spec(model), config, **kwargs)


def test_single_gpu_has_no_comm():
    t = run(RTX, "resnet50", CGXConfig.cgx_default(), n_gpus=1)
    assert t.wire_bytes == 0
    assert t.scaling_efficiency == pytest.approx(1.0)


def test_efficiency_bounded_by_one():
    for model in ["resnet50", "transformer_xl", "bert"]:
        for config, mode in [(CGXConfig.baseline_nccl(), "fused"),
                             (CGXConfig.cgx_default(), "cgx")]:
            t = run(RTX, model, config, plan_mode=mode)
            assert 0 < t.scaling_efficiency <= 1.0


def test_nccl_baseline_under_half_linear_on_commodity():
    """Figure 3: '< 50% of linear scaling' for large models on 8x3090."""
    for model in ["transformer_xl", "vit", "vgg16"]:
        t = run(RTX, model, CGXConfig.baseline_nccl(), plan_mode="fused")
        assert t.scaling_efficiency < 0.5, model


def test_cgx_reaches_high_scaling_on_commodity():
    """Figure 3: CGX reaches 80-90% of linear scaling (TXL somewhat lower
    due to the uncompressible embedding tail, Appendix E)."""
    for model, floor in [("resnet50", 0.8), ("vit", 0.8), ("bert", 0.8),
                         ("transformer_xl", 0.65)]:
        t = run(RTX, model, CGXConfig.cgx_default())
        assert t.scaling_efficiency > floor, model


def test_cgx_self_speedup_2_to_3x():
    """Headline claim: 2-3x self-speedup over NCCL on the 8x3090 box."""
    for model in ["resnet50", "vit", "bert"]:
        base = run(RTX, model, CGXConfig.baseline_nccl(), plan_mode="fused")
        cgx = run(RTX, model, CGXConfig.cgx_default())
        speedup = cgx.throughput / base.throughput
        assert speedup > 1.8, (model, speedup)


def test_cgx_beats_qnccl_which_beats_nccl():
    """Ordering on commodity: CGX >= QNCCL > NCCL."""
    for model in ["resnet50", "transformer_xl"]:
        base = run(RTX, model, CGXConfig.baseline_nccl(), plan_mode="fused")
        qn = run(RTX, model, qnccl_config(), plan_mode="fused")
        cgx = run(RTX, model, CGXConfig.cgx_default())
        assert base.throughput < qn.throughput <= cgx.throughput * 1.02, model


def test_dgx_scales_well_without_compression():
    for model in ["resnet50", "transformer_xl", "vit"]:
        t = run(DGX, model, CGXConfig.baseline_nccl(), plan_mode="fused")
        assert t.scaling_efficiency > 0.85, model


def test_commodity_cgx_matches_dgx_class_throughput():
    """The headline: 8x3090 + CGX matches (or beats) DGX-1 throughput for
    models where the per-GPU envelopes are comparable."""
    for model in ["vit", "bert"]:
        dgx = run(DGX, model, CGXConfig.baseline_nccl(), plan_mode="fused")
        cgx = run(RTX, model, CGXConfig.cgx_default())
        assert cgx.throughput > 0.95 * dgx.throughput, model


def test_fake_compression_sweep_monotone():
    """Figure 1: step time decreases monotonically toward the ideal as the
    (fake) compression ratio grows, then saturates."""
    spec = build_spec("transformer_xl")
    times = []
    for ratio in [1, 4, 16, 64, 256, 1024]:
        config = CGXConfig(
            backend="shm", scheme="sra",
            compression=CompressionSpec("fake", ratio=ratio),
        )
        t = simulate_machine_step(RTX, spec, config)
        times.append(t.step_time)
    assert all(a >= b * 0.999 for a, b in zip(times, times[1:]))
    ideal = single_gpu_step_time(spec, RTX.gpu,
                                 RTX.gpu.max_batch_per_gpu(spec))
    assert times[-1] < 1.2 * ideal          # saturates near ideal
    assert times[0] > 2.5 * times[-1]       # bandwidth was the bottleneck


def test_scaling_cliff_from_4_to_8_gpus():
    """Figure 3: commodity scaling decays with GPU count, and crossing
    to the second NUMA root (4 -> 8) is a visible cliff.  For
    bandwidth-light BERT the QPI crossing dominates (absolute drop 4->8
    exceeds 2->4); heavier models are already bus-bound at 4."""
    efficiencies = {}
    for model in ["transformer_xl", "bert"]:
        eff = {}
        for n in [2, 4, 8]:
            t = run(RTX, model, CGXConfig.baseline_nccl(),
                    plan_mode="fused", n_gpus=n)
            eff[n] = t.scaling_efficiency
        assert eff[2] > eff[4] > eff[8], model
        efficiencies[model] = eff
    bert = efficiencies["bert"]
    assert (bert[4] - bert[8]) > (bert[2] - bert[4])


def test_2080_limited_by_memory_and_compute():
    t3090 = run(RTX, "transformer_xl", CGXConfig.cgx_default())
    t2080 = run(get_machine("rtx2080-8x"), "transformer_xl",
                CGXConfig.cgx_default())
    assert t2080.throughput < 0.5 * t3090.throughput
    assert t2080.batch_per_gpu < t3090.batch_per_gpu


def test_adaptive_bits_reduce_step_time():
    """Lower per-layer bits on the TXL embedding shortens the comm tail."""
    spec = build_spec("transformer_xl")
    static = simulate_machine_step(RTX, spec, CGXConfig.cgx_default())
    adaptive_config = CGXConfig.cgx_default()
    adaptive_config.per_layer["word_emb.weight"] = \
        CompressionSpec("qsgd", bits=2, bucket_size=64)
    adaptive = simulate_machine_step(RTX, spec, adaptive_config)
    assert adaptive.step_time < static.step_time


def test_powersgd_timing_on_commodity():
    """Table 6 shape: PowerSGD is competitive but below CGX."""
    for model in ["resnet50", "bert"]:
        cfg = CGXConfig(backend="shm", scheme="sra",
                        compression=CompressionSpec("powersgd", rank=4))
        ps = run(RTX, model, cfg)
        cgx = run(RTX, model, CGXConfig.cgx_default())
        base = run(RTX, model, CGXConfig.baseline_nccl(), plan_mode="fused")
        assert base.throughput < ps.throughput <= cgx.throughput * 1.05, model


def test_grace_far_below_cgx():
    """Table 6: GRACE is >2x slower than CGX (allgather + INT8 wire)."""
    from repro.baselines import grace_config

    for model in ["transformer_xl", "bert"]:
        gr = run(RTX, model, grace_config(), plan_mode="fused")
        cgx = run(RTX, model, CGXConfig.cgx_default())
        assert cgx.throughput > 1.8 * gr.throughput, model


def test_multinode_speedup_shape():
    """Table 5: CGX gives multi-x speedups over 4 nodes of 4x3090."""
    gen = get_machine("genesis-4x3090")
    cluster = make_cluster("genesis-4x3090", 4)
    for model in ["resnet50", "transformer_xl"]:
        spec = build_spec(model)
        base = simulate_step(spec, gen.gpu, cluster,
                             CGXConfig.baseline_nccl(), plan_mode="fused")
        cgx_cfg = CGXConfig.cgx_default()
        cgx_cfg.backend = "nccl"
        cgx_cfg.scheme = "hier"
        cgx = simulate_step(spec, gen.gpu, cluster, cgx_cfg)
        assert cgx.throughput > 2.5 * base.throughput, model


def test_table4_cloud_economics():
    """Table 4: Genesis+CGX beats AWS NCCL on throughput per dollar."""
    spec = build_spec("bert")
    gen = get_machine("genesis-4x3090")
    aws = get_machine("aws-p3.8xlarge")
    gen_nccl = simulate_machine_step(gen, spec, CGXConfig.baseline_nccl(),
                                     plan_mode="fused")
    aws_nccl = simulate_machine_step(aws, spec, CGXConfig.baseline_nccl(),
                                     plan_mode="fused")
    gen_cgx = simulate_machine_step(gen, spec, CGXConfig.cgx_default())
    per_dollar = {
        "genesis-nccl": gen_nccl.throughput / gen.price_per_hour,
        "aws-nccl": aws_nccl.throughput / aws.price_per_hour,
        "genesis-cgx": gen_cgx.throughput / gen.price_per_hour,
    }
    assert per_dollar["genesis-cgx"] > 1.5 * per_dollar["aws-nccl"]
    assert per_dollar["genesis-cgx"] > 2 * per_dollar["genesis-nccl"]
    # absolute throughputs in the paper's ballpark
    assert gen_cgx.throughput == pytest.approx(14171, rel=0.25)
    assert aws_nccl.throughput == pytest.approx(14407, rel=0.25)


def test_bandwidth_ceiling_table8():
    """Appendix E: with the bandwidth term removed, 88-95% of linear."""
    for model, floor in [("resnet50", 0.85), ("vit", 0.85),
                         ("transformer_xl", 0.85), ("bert", 0.8)]:
        config = CGXConfig(backend="shm", scheme="sra",
                           compression=CompressionSpec("fake", ratio=1e6))
        t = run(RTX, model, config)
        assert t.scaling_efficiency > floor, model


def test_wire_bytes_reported():
    t = run(RTX, "resnet50", CGXConfig.cgx_default())
    dense = build_spec("resnet50").gradient_bytes
    assert 0 < t.wire_bytes < dense * 4  # well under 8x dense traffic


def test_step_timing_fields_consistent():
    t = run(RTX, "vit", CGXConfig.cgx_default())
    assert t.step_time >= t.compute_time
    assert t.comm_tail >= 0
    assert t.throughput == pytest.approx(t.items_per_step / t.step_time)
    assert t.ideal_throughput >= t.throughput

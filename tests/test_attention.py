"""Tests for multi-head self-attention and transformer blocks."""

import numpy as np
import pytest

from repro.nn import MultiHeadSelfAttention, TransformerBlock


def test_attention_output_shape():
    attn = MultiHeadSelfAttention(16, 4, rng=np.random.default_rng(0))
    x = np.random.default_rng(1).normal(size=(2, 5, 16)).astype(np.float32)
    assert attn(x).shape == (2, 5, 16)


def test_attention_rejects_bad_head_count():
    with pytest.raises(ValueError):
        MultiHeadSelfAttention(10, 3)


def test_causal_mask_blocks_future_tokens():
    """With a causal mask, output at position t must not depend on t+1..T."""
    rng = np.random.default_rng(2)
    attn = MultiHeadSelfAttention(8, 2, causal=True, rng=rng)
    x = rng.normal(size=(1, 6, 8)).astype(np.float32)
    base = attn(x).copy()
    perturbed = x.copy()
    perturbed[0, 5] += 10.0  # change the last token only
    out = attn(perturbed)
    np.testing.assert_allclose(out[0, :5], base[0, :5], atol=1e-5)
    assert not np.allclose(out[0, 5], base[0, 5], atol=1e-3)


def test_non_causal_attention_sees_everything():
    rng = np.random.default_rng(3)
    attn = MultiHeadSelfAttention(8, 2, causal=False, rng=rng)
    x = rng.normal(size=(1, 4, 8)).astype(np.float32)
    base = attn(x).copy()
    perturbed = x.copy()
    perturbed[0, 3] += 10.0
    out = attn(perturbed)
    assert not np.allclose(out[0, 0], base[0, 0], atol=1e-4)


def _numeric_param_grad(module, param_name, idx, x, upstream, eps=1e-3):
    param = dict(module.named_parameters())[param_name]
    orig = param.data[idx]
    param.data[idx] = orig + eps
    hi = float(np.sum(module(x) * upstream))
    param.data[idx] = orig - eps
    lo = float(np.sum(module(x) * upstream))
    param.data[idx] = orig
    return (hi - lo) / (2 * eps)


@pytest.mark.parametrize("param_name,idx", [
    ("qkv.weight", (3, 2)),
    ("qkv.bias", (10,)),
    ("proj.weight", (1, 1)),
])
def test_attention_parameter_gradients(param_name, idx):
    rng = np.random.default_rng(4)
    attn = MultiHeadSelfAttention(8, 2, rng=rng)
    x = rng.normal(size=(2, 4, 8)).astype(np.float32)
    upstream = rng.normal(size=(2, 4, 8)).astype(np.float32)
    attn.zero_grad()
    attn(x)
    attn.backward(upstream)
    analytic = dict(attn.named_parameters())[param_name].grad[idx]
    numeric = _numeric_param_grad(attn, param_name, idx, x, upstream)
    assert analytic == pytest.approx(numeric, rel=5e-2, abs=1e-3)


def test_attention_input_gradient():
    rng = np.random.default_rng(5)
    attn = MultiHeadSelfAttention(8, 2, causal=True, rng=rng)
    x = rng.normal(size=(1, 3, 8)).astype(np.float32)
    upstream = rng.normal(size=(1, 3, 8)).astype(np.float32)
    attn(x)
    grad = attn.backward(upstream)
    eps = 1e-3
    for idx in [(0, 0, 0), (0, 1, 4), (0, 2, 7)]:
        orig = x[idx]
        x[idx] = orig + eps
        hi = float(np.sum(attn(x) * upstream))
        x[idx] = orig - eps
        lo = float(np.sum(attn(x) * upstream))
        x[idx] = orig
        numeric = (hi - lo) / (2 * eps)
        assert grad[idx] == pytest.approx(numeric, rel=5e-2, abs=2e-3)


def test_transformer_block_gradients():
    rng = np.random.default_rng(6)
    block = TransformerBlock(8, 2, rng=rng)
    x = rng.normal(size=(2, 3, 8)).astype(np.float32)
    upstream = rng.normal(size=(2, 3, 8)).astype(np.float32)
    block.zero_grad()
    block(x)
    block.backward(upstream)
    for param_name, idx in [("fc1.weight", (5, 3)), ("ln1.weight", (2,)),
                            ("attn.qkv.weight", (0, 0))]:
        analytic = dict(block.named_parameters())[param_name].grad[idx]
        numeric = _numeric_param_grad(block, param_name, idx, x, upstream)
        assert analytic == pytest.approx(numeric, rel=5e-2, abs=1e-3)


def test_transformer_block_parameter_names_match_filters():
    """Norm and bias tensors must be discoverable by CGX's name filters."""
    block = TransformerBlock(8, 2, rng=np.random.default_rng(7))
    names = [n for n, _ in block.named_parameters()]
    assert any("ln1" in n for n in names)
    assert any(n.endswith(".bias") for n in names)

"""Tests for the ASCII chart renderer."""

import pytest

from repro.report import ascii_chart


def test_chart_contains_markers_and_legend():
    chart = ascii_chart({"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]})
    assert "o" in chart and "x" in chart
    assert "o=a" in chart and "x=b" in chart


def test_chart_dimensions():
    chart = ascii_chart({"s": [(0, 0), (10, 5)]}, width=40, height=10)
    lines = chart.splitlines()
    plot_lines = [l for l in lines if "|" in l]
    assert len(plot_lines) == 10
    assert all(len(l.split("|", 1)[1]) <= 40 for l in plot_lines)


def test_chart_extremes_placed_at_corners():
    chart = ascii_chart({"s": [(0, 0), (100, 100)]}, width=20, height=5)
    lines = [l.split("|", 1)[1] for l in chart.splitlines() if "|" in l]
    assert lines[0].rstrip().endswith("o")     # max y at top-right
    assert lines[-1].startswith("o")           # min y at bottom-left


def test_log_axes():
    chart = ascii_chart({"s": [(1, 1), (10, 10), (100, 100)]},
                        log_x=True, log_y=True, width=21, height=7)
    lines = [l.split("|", 1)[1] for l in chart.splitlines() if "|" in l]
    # on log-log a geometric series is a straight diagonal: the middle
    # point lands in the middle row and middle column
    middle = lines[3]
    assert middle[10] == "o"
    assert "[log x]" in chart and "[log y]" in chart


def test_log_axis_rejects_non_positive():
    with pytest.raises(ValueError):
        ascii_chart({"s": [(0, 1), (1, 2)]}, log_x=True)


def test_empty_series_rejected():
    with pytest.raises(ValueError):
        ascii_chart({})
    with pytest.raises(ValueError):
        ascii_chart({"s": []})


def test_flat_series_does_not_crash():
    chart = ascii_chart({"s": [(0, 5), (1, 5), (2, 5)]})
    assert "o" in chart


def test_axis_labels_rendered():
    chart = ascii_chart({"s": [(1, 2), (3, 4)]}, x_label="ratio",
                        y_label="ms")
    assert "ms vs ratio" in chart

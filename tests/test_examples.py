"""Smoke tests keeping the example scripts runnable.

The fast examples run end-to-end in a subprocess; the training-heavy
adaptive example is compile+import checked (its full path is exercised
by bench_fig4_adaptive_training.py).
"""

import os
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
SRC_DIR = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "src"))


def run_example(name, timeout=600):
    path = os.path.join(EXAMPLES_DIR, name)
    # the subprocess does not inherit pytest's import path, so put the
    # in-repo package on PYTHONPATH explicitly
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        [sys.executable, path], capture_output=True, text=True,
        timeout=timeout, cwd=EXAMPLES_DIR, env=env,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart_runs_and_recovers_accuracy():
    out = run_example("quickstart.py")
    assert "accuracy gap" in out
    assert "compression" in out


def test_commodity_vs_cloud_prints_speedups():
    out = run_example("commodity_vs_cloud.py")
    assert "transformer_xl" in out
    assert "DGX-1" in out
    # every model row shows a multi-x speedup
    assert out.count("x ") >= 4


def test_multinode_cloud_prints_tables():
    out = run_example("multinode_cloud.py")
    assert "Table 5" in out
    assert "tokens/s per $" in out


def test_communication_trace_writes_perfetto_json():
    out = run_example("communication_trace.py")
    assert "transfers traced" in out
    assert "busiest links" in out
    trace = os.path.join(EXAMPLES_DIR, "vit_step_trace.json")
    assert os.path.exists(trace)
    os.unlink(trace)


@pytest.mark.parametrize("name", [
    "quickstart.py", "commodity_vs_cloud.py", "adaptive_compression.py",
    "multinode_cloud.py", "communication_trace.py",
])
def test_all_examples_compile(name):
    py_compile.compile(os.path.join(EXAMPLES_DIR, name), doraise=True)

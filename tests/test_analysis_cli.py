"""Tests for the analysis CLI: formats, exit codes, baseline workflow."""

import io
import json
import os
import shutil

from repro.analysis import JSON_REPORT_SCHEMA
from repro.analysis.cli import main as analysis_main
from repro.cli import main as repro_main

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "analysis")
SRC = os.path.join(os.path.dirname(__file__), "..", "src", "repro")


def run_cli(argv):
    out = io.StringIO()
    code = analysis_main(argv, out=out)
    return code, out.getvalue()


def _validate(value, schema, where="$"):
    """Minimal JSON-schema validator covering the subset we emit."""
    kind = schema["type"]
    types = {"object": dict, "array": list, "integer": int, "string": str}
    assert isinstance(value, types[kind]), f"{where}: expected {kind}"
    if kind == "object":
        for required in schema.get("required", ()):
            assert required in value, f"{where}: missing {required!r}"
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                _validate(value[key], sub, f"{where}.{key}")
    elif kind == "array":
        for i, item in enumerate(value):
            _validate(item, schema["items"], f"{where}[{i}]")


def test_clean_tree_exits_zero_with_schedule_verification():
    code, out = run_cli([SRC, "--format", "text"])
    assert code == 0
    assert "clean" in out


def test_fixture_files_exit_nonzero_and_name_every_rule():
    code, out = run_cli([FIXTURES, "--format", "text", "--no-schedule"])
    assert code == 1
    for rule in ("REP001", "REP002", "REP003", "REP004", "REP005", "REP006"):
        assert rule in out


def test_json_output_matches_schema():
    code, out = run_cli([FIXTURES, "--format", "json", "--no-schedule"])
    assert code == 1
    report = json.loads(out)
    _validate(report, JSON_REPORT_SCHEMA)
    assert report["summary"]["new"] == len(report["findings"]) > 0
    assert report["summary"]["by_rule"]["REP001"] == 1


def test_schedule_only_skips_lint_paths():
    code, out = run_cli(["--schedule-only", "--format", "json",
                         "this/path/does/not/exist"])
    assert code == 0  # paths are ignored entirely in schedule-only mode
    assert json.loads(out)["summary"]["total"] == 0


def test_missing_lint_path_is_a_usage_error():
    code, _ = run_cli(["this/path/does/not/exist", "--no-schedule"])
    assert code == 2


def test_baseline_grandfathers_old_findings_but_fails_new_ones(tmp_path):
    victim = tmp_path / "victim.py"
    shutil.copy(os.path.join(FIXTURES, "rep001_float_eq.py"), victim)
    baseline = tmp_path / "baseline.json"

    code, out = run_cli([str(victim), "--no-schedule",
                         "--baseline", str(baseline), "--write-baseline"])
    assert code == 0 and "baseline written" in out

    # grandfathered: same finding no longer fails the run
    code, out = run_cli([str(victim), "--no-schedule",
                         "--baseline", str(baseline)])
    assert code == 0
    assert "(1 baselined)" in out

    # a new violation still fails, and only the new one is reported
    victim.write_text(victim.read_text() + "\n\ndef f(x, acc=[]):\n"
                      "    acc.append(x)\n    return acc\n")
    code, out = run_cli([str(victim), "--no-schedule",
                         "--baseline", str(baseline)])
    assert code == 1
    assert "REP004" in out and "REP001" not in out


def test_repro_analyze_subcommand_forwards(capsys):
    out = io.StringIO()
    code = repro_main(["analyze", SRC, "--format", "json"], out=out)
    assert code == 0
    report = json.loads(out.getvalue())
    _validate(report, JSON_REPORT_SCHEMA)
    assert report["summary"]["new"] == 0


# -- pass selection (contracts / races) ----------------------------------------

def test_contracts_and_races_flags_run_clean():
    code, out = run_cli(["--contracts", "--races"])
    assert code == 0
    assert "clean" in out


def test_contracts_flag_skips_lint_paths():
    # pure semantic pass: nonexistent lint paths must not matter
    code, out = run_cli(["definitely/missing.py", "--contracts"])
    assert code == 0


def test_schedule_only_rejects_contracts_combination():
    code, _ = run_cli(["--schedule-only", "--contracts"])
    assert code == 2


def test_no_schedule_rejects_contracts_combination():
    code, _ = run_cli(["--no-schedule", "--races"])
    assert code == 2


def test_contract_findings_flow_through_baseline(tmp_path):
    import repro.analysis.cli as cli_mod
    from repro.analysis.findings import Finding

    injected = [Finding(rule="CON003", path="<contract:qsgd>", line=0,
                        col=0, message="synthetic drift", source="contract",
                        scheme="qsgd")]
    original = cli_mod.__dict__.get("verify_schedules")
    try:
        # splice a synthetic contract finding into the schedule hook so
        # the full report/baseline path exercises the new source kind
        cli_mod.verify_schedules = lambda: injected
        baseline = tmp_path / "base.json"
        code, out = run_cli(["--schedule-only", "--baseline", str(baseline),
                             "--write-baseline"])
        assert code == 0
        code, out = run_cli(["--schedule-only", "--baseline", str(baseline)])
        assert code == 0 and "(1 baselined)" in out
        code, out = run_cli(["--schedule-only"])
        assert code == 1 and "contract[qsgd]: CON003" in out
    finally:
        cli_mod.verify_schedules = original


def test_json_report_includes_contract_and_race_findings():
    code, raw = run_cli(["--contracts", "--races", "--format", "json"])
    assert code == 0
    report = json.loads(raw)
    _validate(report, JSON_REPORT_SCHEMA)
    assert report["summary"]["total"] == 0

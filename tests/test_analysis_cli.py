"""Tests for the analysis CLI: formats, exit codes, baseline workflow."""

import io
import json
import os
import shutil

from repro.analysis import JSON_REPORT_SCHEMA
from repro.analysis.cli import main as analysis_main
from repro.cli import main as repro_main

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "analysis")
SRC = os.path.join(os.path.dirname(__file__), "..", "src", "repro")


def run_cli(argv):
    out = io.StringIO()
    code = analysis_main(argv, out=out)
    return code, out.getvalue()


def _validate(value, schema, where="$"):
    """Minimal JSON-schema validator covering the subset we emit."""
    kind = schema["type"]
    types = {"object": dict, "array": list, "integer": int, "string": str}
    assert isinstance(value, types[kind]), f"{where}: expected {kind}"
    if kind == "object":
        for required in schema.get("required", ()):
            assert required in value, f"{where}: missing {required!r}"
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                _validate(value[key], sub, f"{where}.{key}")
    elif kind == "array":
        for i, item in enumerate(value):
            _validate(item, schema["items"], f"{where}[{i}]")


def test_clean_tree_exits_zero_with_schedule_verification():
    code, out = run_cli([SRC, "--format", "text"])
    assert code == 0
    assert "clean" in out


def test_fixture_files_exit_nonzero_and_name_every_rule():
    code, out = run_cli([FIXTURES, "--format", "text", "--no-schedule"])
    assert code == 1
    for rule in ("REP001", "REP002", "REP003", "REP004", "REP005", "REP006"):
        assert rule in out


def test_json_output_matches_schema():
    code, out = run_cli([FIXTURES, "--format", "json", "--no-schedule"])
    assert code == 1
    report = json.loads(out)
    _validate(report, JSON_REPORT_SCHEMA)
    assert report["summary"]["new"] == len(report["findings"]) > 0
    assert report["summary"]["by_rule"]["REP001"] == 1


def test_schedule_only_skips_lint_paths():
    code, out = run_cli(["--schedule-only", "--format", "json",
                         "this/path/does/not/exist"])
    assert code == 0  # paths are ignored entirely in schedule-only mode
    assert json.loads(out)["summary"]["total"] == 0


def test_missing_lint_path_is_a_usage_error():
    code, _ = run_cli(["this/path/does/not/exist", "--no-schedule"])
    assert code == 2


def test_baseline_grandfathers_old_findings_but_fails_new_ones(tmp_path):
    victim = tmp_path / "victim.py"
    shutil.copy(os.path.join(FIXTURES, "rep001_float_eq.py"), victim)
    baseline = tmp_path / "baseline.json"

    code, out = run_cli([str(victim), "--no-schedule",
                         "--baseline", str(baseline), "--write-baseline"])
    assert code == 0 and "baseline written" in out

    # grandfathered: same finding no longer fails the run
    code, out = run_cli([str(victim), "--no-schedule",
                         "--baseline", str(baseline)])
    assert code == 0
    assert "(1 baselined)" in out

    # a new violation still fails, and only the new one is reported
    victim.write_text(victim.read_text() + "\n\ndef f(x, acc=[]):\n"
                      "    acc.append(x)\n    return acc\n")
    code, out = run_cli([str(victim), "--no-schedule",
                         "--baseline", str(baseline)])
    assert code == 1
    assert "REP004" in out and "REP001" not in out


def test_repro_analyze_subcommand_forwards(capsys):
    out = io.StringIO()
    code = repro_main(["analyze", SRC, "--format", "json"], out=out)
    assert code == 0
    report = json.loads(out.getvalue())
    _validate(report, JSON_REPORT_SCHEMA)
    assert report["summary"]["new"] == 0


# -- pass selection (contracts / races) ----------------------------------------

def test_contracts_and_races_flags_run_clean():
    code, out = run_cli(["--contracts", "--races"])
    assert code == 0
    assert "clean" in out


def test_contracts_flag_skips_lint_paths():
    # pure semantic pass: nonexistent lint paths must not matter
    code, out = run_cli(["definitely/missing.py", "--contracts"])
    assert code == 0


def test_schedule_only_rejects_contracts_combination():
    code, _ = run_cli(["--schedule-only", "--contracts"])
    assert code == 2


def test_no_schedule_rejects_contracts_combination():
    code, _ = run_cli(["--no-schedule", "--races"])
    assert code == 2


def test_contract_findings_flow_through_baseline(tmp_path):
    import repro.analysis.cli as cli_mod
    from repro.analysis.findings import Finding

    injected = [Finding(rule="CON003", path="<contract:qsgd>", line=0,
                        col=0, message="synthetic drift", source="contract",
                        scheme="qsgd")]
    original = cli_mod.__dict__.get("verify_schedules")
    try:
        # splice a synthetic contract finding into the schedule hook so
        # the full report/baseline path exercises the new source kind
        cli_mod.verify_schedules = lambda: injected
        baseline = tmp_path / "base.json"
        code, out = run_cli(["--schedule-only", "--baseline", str(baseline),
                             "--write-baseline"])
        assert code == 0
        code, out = run_cli(["--schedule-only", "--baseline", str(baseline)])
        assert code == 0 and "(1 baselined)" in out
        code, out = run_cli(["--schedule-only"])
        assert code == 1 and "contract[qsgd]: CON003" in out
    finally:
        cli_mod.verify_schedules = original


def test_json_report_includes_contract_and_race_findings():
    code, raw = run_cli(["--contracts", "--races", "--format", "json"])
    assert code == 0
    report = json.loads(raw)
    _validate(report, JSON_REPORT_SCHEMA)
    assert report["summary"]["total"] == 0


# -- pass selection (plans / shapes / --all) -----------------------------------

def test_plans_and_shapes_flags_run_clean():
    code, out = run_cli(["--plans", "--shapes"])
    assert code == 0
    assert "clean" in out


def test_plans_flag_skips_lint_paths():
    code, out = run_cli(["definitely/missing.py", "--plans"])
    assert code == 0


def test_all_flag_selects_every_pass():
    import argparse

    from repro.analysis.cli import ALL_PASSES, build_parser, select_passes

    args = build_parser().parse_args(["--all"])
    assert select_passes(args) == ALL_PASSES
    assert set(ALL_PASSES) == {"lint", "schedule", "contracts", "races",
                               "plans", "shapes", "health", "liveness",
                               "overlap", "sched", "elastic"}


def test_all_flag_rejects_pass_selection_flags():
    for conflict in (["--all", "--plans"], ["--all", "--schedule-only"],
                     ["--all", "--no-schedule"], ["--all", "--shapes"]):
        code, _ = run_cli(conflict)
        assert code == 2, conflict


def test_schedule_only_rejects_plans_combination():
    code, _ = run_cli(["--schedule-only", "--plans"])
    assert code == 2


def test_all_flag_runs_every_battery(monkeypatch, tmp_path):
    """--all invokes every battery and merges their exit status."""
    import repro.analysis.cli as cli_mod
    import repro.analysis.plans as plans_mod
    import repro.analysis.shapes as shapes_mod
    from repro.analysis.findings import Finding

    ran = []
    planted = [Finding(rule="BWP001", path="<plan:kmeans>", line=0, col=0,
                       message="synthetic budget breach", source="plan",
                       scheme="kmeans")]
    monkeypatch.setattr(cli_mod, "verify_schedules",
                        lambda: ran.append("schedule") or [])
    monkeypatch.setattr(plans_mod, "verify_plans",
                        lambda: ran.append("plans") or planted)
    monkeypatch.setattr(shapes_mod, "verify_shapes",
                        lambda: ran.append("shapes") or [])
    src_file = tmp_path / "clean.py"
    src_file.write_text("x = 1\n")

    code, out = run_cli([str(src_file), "--all"])
    assert {"schedule", "plans", "shapes"} <= set(ran)
    assert code == 1
    assert "plan[kmeans]: BWP001" in out


def test_plan_findings_round_trip_through_json_and_baseline(tmp_path,
                                                            monkeypatch):
    import repro.analysis.plans as plans_mod
    from repro.analysis import JSON_REPORT_SCHEMA
    from repro.analysis.findings import Finding

    planted = [Finding(rule="BWP003", path="<plan:bayes>", line=0, col=0,
                       message="synthetic gap regression", source="plan",
                       scheme="bayes")]
    monkeypatch.setattr(plans_mod, "verify_plans", lambda: planted)

    code, raw = run_cli(["--plans", "--format", "json"])
    assert code == 1
    report = json.loads(raw)
    _validate(report, JSON_REPORT_SCHEMA)
    assert report["findings"][0]["source"] == "plan"

    baseline = tmp_path / "base.json"
    code, _ = run_cli(["--plans", "--baseline", str(baseline),
                       "--write-baseline"])
    assert code == 0
    code, out = run_cli(["--plans", "--baseline", str(baseline)])
    assert code == 0 and "(1 baselined)" in out


def test_shape_findings_render_with_world(monkeypatch):
    import repro.analysis.shapes as shapes_mod
    from repro.analysis.findings import Finding

    planted = [Finding(rule="SHP003", path="<shape:vgg16>", line=0, col=0,
                       message="synthetic wire drift", source="shape",
                       scheme="qsgd/sra", world=4)]
    monkeypatch.setattr(shapes_mod, "verify_shapes", lambda: planted)
    code, out = run_cli(["--shapes"])
    assert code == 1
    assert "shape[qsgd/sra@world=4]: SHP003" in out


def test_repro_analyze_forwards_plans_shapes_and_all(monkeypatch):
    import repro.analysis.plans as plans_mod
    import repro.analysis.shapes as shapes_mod

    ran = []
    monkeypatch.setattr(plans_mod, "verify_plans",
                        lambda: ran.append("plans") or [])
    monkeypatch.setattr(shapes_mod, "verify_shapes",
                        lambda: ran.append("shapes") or [])
    out = io.StringIO()
    code = repro_main(["analyze", "--plans", "--shapes"], out=out)
    assert code == 0
    assert ran == ["plans", "shapes"]


# -- pass selection (liveness) -------------------------------------------------

def test_liveness_flag_runs_clean():
    code, out = run_cli(["--liveness"])
    assert code == 0
    assert "clean" in out


def test_liveness_flag_skips_lint_paths():
    code, out = run_cli(["definitely/missing.py", "--liveness"])
    assert code == 0


def test_liveness_findings_round_trip_through_json_and_baseline(tmp_path,
                                                                monkeypatch):
    import repro.analysis.liveness as liveness_mod
    from repro.analysis.findings import Finding

    planted = [Finding(rule="DLV001", path="<liveness:ring@world=4/none>",
                       line=0, col=0,
                       message="synthetic wait-for cycle 0 -> 1 -> 0",
                       source="liveness", scheme="ring", world=4)]
    monkeypatch.setattr(liveness_mod, "verify_liveness", lambda: planted)

    code, raw = run_cli(["--liveness", "--format", "json"])
    assert code == 1
    report = json.loads(raw)
    _validate(report, JSON_REPORT_SCHEMA)
    assert report["findings"][0]["source"] == "liveness"

    baseline = tmp_path / "base.json"
    code, _ = run_cli(["--liveness", "--baseline", str(baseline),
                       "--write-baseline"])
    assert code == 0
    code, out = run_cli(["--liveness", "--baseline", str(baseline)])
    assert code == 0 and "(1 baselined)" in out


def test_liveness_battery_findings_render_with_scheme_and_world(monkeypatch):
    import repro.analysis.liveness as liveness_mod
    from repro.analysis.findings import Finding

    planted = [Finding(rule="DLV005", path="<liveness:partial@world=3/none>",
                       line=0, col=0, message="synthetic stranded carry",
                       source="liveness", scheme="partial", world=3)]
    monkeypatch.setattr(liveness_mod, "verify_liveness", lambda: planted)
    code, out = run_cli(["--liveness"])
    assert code == 1
    assert "liveness[partial@world=3]: DLV005" in out


def test_liveness_file_findings_render_like_lint(monkeypatch):
    import repro.analysis.liveness as liveness_mod
    from repro.analysis.findings import Finding

    planted = [Finding(rule="DLV006", path="src/repro/collectives/x.py",
                       line=12, col=4, message="synthetic blocking call",
                       source="liveness", snippet="time.sleep(1)")]
    monkeypatch.setattr(liveness_mod, "verify_liveness", lambda: planted)
    code, out = run_cli(["--liveness"])
    assert code == 1
    assert "src/repro/collectives/x.py:12:5: DLV006" in out


# -- pass selection (sched) ----------------------------------------------------

def test_sched_flag_selects_only_the_fleet_certifier():
    from repro.analysis.cli import build_parser, select_passes

    args = build_parser().parse_args(["--sched"])
    assert select_passes(args) == ("sched",)
    args = build_parser().parse_args(["--sched", "--overlap"])
    assert select_passes(args) == ("overlap", "sched")


def test_sched_battery_findings_render_with_scheme_and_jobs(monkeypatch):
    import repro.analysis.sched as sched_mod
    from repro.analysis.findings import Finding

    planted = [Finding(rule="SCD005", path="<sched:packed-static@n=12/x>",
                       line=0, col=0, message="synthetic isolation breach",
                       source="sched", scheme="packed-static", world=12)]
    monkeypatch.setattr(sched_mod, "verify_sched", lambda: planted)
    code, out = run_cli(["--sched"])
    assert code == 1
    assert "sched[packed-static@jobs=12]: SCD005" in out


def test_sched_findings_round_trip_through_json_and_baseline(tmp_path,
                                                             monkeypatch):
    import repro.analysis.sched as sched_mod
    from repro.analysis.findings import Finding

    planted = [Finding(rule="SCD003", path="<sched:numa-adaptive@n=8/y>",
                       line=0, col=0,
                       message="synthetic conservation leak",
                       source="sched", scheme="numa-adaptive", world=8)]
    monkeypatch.setattr(sched_mod, "verify_sched", lambda: planted)

    code, raw = run_cli(["--sched", "--format", "json"])
    assert code == 1
    report = json.loads(raw)
    _validate(report, JSON_REPORT_SCHEMA)
    assert report["findings"][0]["source"] == "sched"

    baseline = tmp_path / "base.json"
    code, _ = run_cli(["--sched", "--baseline", str(baseline),
                       "--write-baseline"])
    assert code == 0
    code, out = run_cli(["--sched", "--baseline", str(baseline)])
    assert code == 0 and "(1 baselined)" in out

"""Fleet simulator: shared-clock multi-job runs, isolation, fairness.

The two physics tests here are the subsystem's contract: jobs placed on
*disjoint* machines must finish at exactly the sim time they'd take
alone (sharing the clock is free), and jobs forced onto the *same*
links must slow down by the serialization the shared bottleneck
predicts — no more than full serialization, no less than the
competitor's occupancy of the hot link.
"""

import pytest

from repro.cluster import get_machine, make_cluster
from repro.models import ModelSpec, TensorSpec
from repro.sched import (FleetSimulator, JobSpec, compute_metrics,
                         jain_fairness, percentile, sample_fleet)

#: comm-dominated probe model: ~2M parameters of gradient with almost no
#: compute, so step times are pure communication and contention math is
#: predictable
TINY = ModelSpec("tinynet", tensors=[
    TensorSpec("fc1.weight", "linear", 1 << 20, flops=1e3, position=0,
               shape=(1024, 1024)),
    TensorSpec("fc2.weight", "linear", 1 << 20, flops=1e3, position=1,
               shape=(1024, 1024)),
], default_batch_per_gpu=1)
LIB = {"tinynet": TINY}


def _run(jobs, topology, **kwargs):
    kwargs.setdefault("spec_library", LIB)
    return FleetSimulator(topology, jobs, **kwargs).run()


def test_fleet_validates_inputs():
    topo = get_machine("rtx3090-8x").topology()
    with pytest.raises(KeyError):
        FleetSimulator(topo, [JobSpec(1, "tinynet", 2, 0.0, 1)],
                       policy="fifo", spec_library=LIB)
    with pytest.raises(ValueError):   # duplicate job ids
        FleetSimulator(topo, [JobSpec(1, "tinynet", 2, 0.0, 1),
                              JobSpec(1, "tinynet", 2, 1.0, 1)],
                       spec_library=LIB)
    with pytest.raises(ValueError):   # bigger than the whole fleet
        FleetSimulator(topo, [JobSpec(1, "tinynet", 16, 0.0, 1)],
                       spec_library=LIB)


def test_disjoint_jobs_run_as_if_alone():
    # two 8-rank jobs on a 2-node fleet: packed placement gives each its
    # own machine; no shared links means zero cross-job interference, so
    # finish times equal the single-job runs exactly
    together = _run([JobSpec(1, "tinynet", 8, 0.0, 2),
                     JobSpec(2, "tinynet", 8, 0.0, 2)],
                    make_cluster("rtx3090-8x", 2))
    assert [s.ranks for s in together.states] == \
        [tuple(range(8)), tuple(range(8, 16))]
    alone = _run([JobSpec(1, "tinynet", 8, 0.0, 2)],
                 make_cluster("rtx3090-8x", 2))
    for state in together.states:
        assert state.finish_time == alone.states[0].finish_time
    assert compute_metrics(together).mean_slowdown == pytest.approx(1.0)


def test_shared_link_jobs_pay_the_serialization_factor():
    # two 2-rank jobs under the same PCIe root share the host-memory
    # bottleneck; the first-scheduled job is untouched, the second is
    # delayed by (at least) the first's occupancy of the hot link and
    # (at most) full serialization of the two steps
    topo = get_machine("rtx3090-8x").topology()
    result = _run([JobSpec(1, "tinynet", 2, 0.0, 1),
                   JobSpec(2, "tinynet", 2, 0.0, 1)], topo)
    first, second = result.states
    assert first.ranks == (0, 1) and second.ranks == (2, 3)

    t_iso = _run([JobSpec(1, "tinynet", 2, 0.0, 1)],
                 get_machine("rtx3090-8x").topology()).states[0].finish_time
    assert first.finish_time == t_iso

    job1_busy = result.network.job_link_seconds(1)
    job2_busy = result.network.job_link_seconds(2)
    shared = {name for name in job1_busy
              if name in job2_busy and not name.startswith("gpu")}
    assert shared   # same root complex: the hostmem links are contended
    bottleneck = max(job1_busy[name] for name in shared)
    delay = second.finish_time - t_iso
    assert delay >= 0.9 * bottleneck          # serialization lower bound
    assert result.makespan <= 2.0 * t_iso     # full-serialization ceiling
    assert compute_metrics(result).mean_slowdown > 1.0


def test_deep_queue_has_nonzero_wait_and_everyone_finishes():
    topo = make_cluster("rtx3090-8x", 2)
    jobs = sample_fleet(40, seed=11, models=("resnet50",), worlds=(4, 8),
                        mean_interarrival=0.001)
    result = FleetSimulator(topo, jobs, policy="packed", seed=11).run()
    metrics = compute_metrics(result)
    assert metrics.completed == 40
    assert metrics.mean_queue_wait > 0
    assert metrics.p95_queue_wait >= metrics.mean_queue_wait
    assert 0 < metrics.fairness <= 1
    assert metrics.fleet_items_per_s > 0
    assert metrics.total_wire_bytes > 0
    # admissions never overlap on a GPU: replay the event log
    busy: dict[int, float] = {}
    ranks_of = {}
    for record in result.records:
        if record["event"] == "admit":
            for gpu in record["ranks"]:
                assert busy.get(gpu, 0.0) <= record["t"] + 1e-9
            ranks_of[record["job"]] = record["ranks"]
        elif record["event"] == "finish":
            for gpu in ranks_of[record["job"]]:
                busy[gpu] = record["t"]


def test_same_seed_logs_are_byte_identical():
    topo = make_cluster("rtx3090-8x", 2)

    def campaign():
        jobs = sample_fleet(16, seed=5)
        return FleetSimulator(topo, jobs, policy="spread", seed=5).run()

    assert campaign().log_bytes() == campaign().log_bytes()
    other = FleetSimulator(topo, sample_fleet(16, seed=6), policy="spread",
                           seed=6).run()
    assert campaign().log_bytes() != other.log_bytes()


def test_throttled_job_is_slower():
    topo = get_machine("rtx3090-8x").topology()
    free = _run([JobSpec(1, "tinynet", 2, 0.0, 1)], topo)
    throttled = _run([JobSpec(1, "tinynet", 2, 0.0, 1, throttle=0.25)],
                     get_machine("rtx3090-8x").topology())
    assert throttled.makespan > free.makespan
    # the throttle is scoped to the job and released at departure
    assert throttled.network.job_throttle(1) == 1.0


def test_adaptive_routing_fleet_completes_deterministically():
    topo = make_cluster("dgx1", 1)
    jobs = [JobSpec(1, "tinynet", 4, 0.0, 2),
            JobSpec(2, "tinynet", 4, 0.0, 2)]
    a = _run(list(jobs), make_cluster("dgx1", 1), routing="adaptive")
    b = _run(list(jobs), topo, routing="adaptive")
    assert a.log_bytes() == b.log_bytes()
    assert all(s.status == "done" for s in a.states)


def test_arrivals_respect_the_clock():
    # a job arriving later never starts earlier, even if GPUs are free
    topo = get_machine("rtx3090-8x").topology()
    result = _run([JobSpec(1, "tinynet", 2, 0.0, 1),
                   JobSpec(2, "tinynet", 2, 1.0, 1)], topo)
    late = result.states[1]
    assert late.admit_time == pytest.approx(1.0)
    assert late.queue_wait == pytest.approx(0.0)


def test_jain_fairness_and_percentile_helpers():
    assert jain_fairness([]) == 1.0
    assert jain_fairness([0.5, 0.5, 0.5]) == pytest.approx(1.0)
    assert jain_fairness([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)
    with pytest.raises(ValueError):
        jain_fairness([-1.0])
    assert percentile([3.0, 1.0, 2.0], 50) == 2.0
    assert percentile([1.0, 2.0], 100) == 2.0
    assert percentile([5.0], 95) == 5.0
    assert percentile([], 50) == 0.0   # no waits -> zero tail, not a crash
    with pytest.raises(ValueError):
        percentile([1.0], 101)


def test_metrics_serialize_to_plain_json_types():
    import json

    topo = get_machine("rtx3090-8x").topology()
    result = _run([JobSpec(1, "tinynet", 2, 0.0, 2),
                   JobSpec(2, "tinynet", 2, 0.1, 2)], topo,
                  link_load_bin=0.001)
    metrics = compute_metrics(result)
    payload = json.loads(json.dumps(metrics.to_dict()))
    assert payload["n_jobs"] == 2 and payload["completed"] == 2
    assert metrics.link_timelines   # the binned link-load timelines
    assert metrics.link_load_bin == 0.001

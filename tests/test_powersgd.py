"""Tests for the PowerSGD low-rank compressor and orthonormalization."""

import numpy as np
import pytest

from repro.compression import (
    CompressionSpec,
    PowerSGDCompressor,
    orthonormalize,
)


def _spec(rank=4):
    return CompressionSpec("powersgd", rank=rank)


def test_orthonormalize_produces_orthonormal_columns():
    rng = np.random.default_rng(0)
    m = rng.normal(size=(20, 5)).astype(np.float32)
    q = orthonormalize(m)
    gram = q.T @ q
    np.testing.assert_allclose(gram, np.eye(5), atol=1e-4)


def test_orthonormalize_handles_degenerate_columns():
    m = np.zeros((4, 2), dtype=np.float32)
    m[:, 0] = [1, 0, 0, 0]
    m[:, 1] = [2, 0, 0, 0]  # linearly dependent
    q = orthonormalize(m)
    assert np.all(np.isfinite(q))
    np.testing.assert_allclose(q.T @ q, np.eye(2), atol=1e-5)


def test_exact_recovery_of_low_rank_matrix():
    """A genuinely rank-r matrix is recovered (nearly) exactly."""
    rng = np.random.default_rng(1)
    u = rng.normal(size=(32, 2)).astype(np.float32)
    v = rng.normal(size=(16, 2)).astype(np.float32)
    m = u @ v.T
    comp = PowerSGDCompressor(_spec(rank=2))
    out = m
    for _ in range(5):  # a few warm-start iterations
        out = comp.roundtrip(m, rng, key="m")
    rel = np.linalg.norm(out - m) / np.linalg.norm(m)
    assert rel < 1e-3


def test_warm_start_improves_approximation():
    rng = np.random.default_rng(2)
    # matrix with decaying spectrum: power iteration converges to top-r
    u, _ = np.linalg.qr(rng.normal(size=(40, 40)))
    s = np.diag(1.0 / (1 + np.arange(40.0)) ** 2)
    m = (u @ s @ u.T).astype(np.float32)
    comp = PowerSGDCompressor(_spec(rank=4))
    first = np.linalg.norm(comp.roundtrip(m, rng, key="w") - m)
    for _ in range(15):
        last = np.linalg.norm(comp.roundtrip(m, rng, key="w") - m)
    assert last < first


def test_1d_tensors_stay_dense():
    rng = np.random.default_rng(3)
    x = rng.normal(size=100).astype(np.float32)
    comp = PowerSGDCompressor(_spec())
    out = comp.roundtrip(x, rng)
    np.testing.assert_array_equal(out, x)
    assert _spec().wire_bytes(100, (100,)) == 400  # dense fp32


def test_wire_bytes_factor_accounting():
    spec = _spec(rank=4)
    assert spec.wire_bytes(64 * 32, (64, 32)) == (64 + 32) * 4 * 4


def test_rank_clamped_to_matrix_dims():
    rng = np.random.default_rng(4)
    m = rng.normal(size=(3, 5)).astype(np.float32)
    comp = PowerSGDCompressor(_spec(rank=10))
    compressed = comp.compress(m, rng, key="small")
    assert compressed.payload["p"].shape == (3, 3)


def test_higher_rank_lower_error():
    rng = np.random.default_rng(5)
    m = rng.normal(size=(64, 64)).astype(np.float32)
    errors = []
    for rank in [1, 4, 16]:
        comp = PowerSGDCompressor(_spec(rank=rank))
        out = m
        for _ in range(5):
            out = comp.roundtrip(m, rng, key=f"r{rank}")
        errors.append(float(np.linalg.norm(out - m)))
    assert errors == sorted(errors, reverse=True)


def test_flops_model_positive_for_matrices_zero_for_vectors():
    comp = PowerSGDCompressor(_spec(rank=4))
    assert comp.flops(64 * 32, (64, 32)) > 0
    assert comp.flops(100, (100,)) == 0.0


def test_reset_clears_warm_start():
    rng = np.random.default_rng(6)
    m = rng.normal(size=(16, 16)).astype(np.float32)
    comp = PowerSGDCompressor(_spec())
    comp.roundtrip(m, rng, key="k")
    assert comp._q_memory
    comp.reset()
    assert not comp._q_memory


def test_rank_validation():
    with pytest.raises(ValueError):
        CompressionSpec("powersgd", rank=0)

"""Property-based tests over the timed collective schedules."""

from hypothesis import given, settings, strategies as st

from repro.cluster import Network, get_machine
from repro.collectives import time_allreduce
from repro.compression import CompressionSpec

SCHEMES = ["sra", "ring", "tree", "allgather", "ps", "hier"]


def fresh_network(machine="rtx3090-8x", backend="shm"):
    return get_machine(machine).network(backend)


@given(
    scheme=st.sampled_from(SCHEMES),
    numel=st.integers(1_000, 5_000_000),
    world=st.sampled_from([2, 4, 8]),
    ready=st.floats(0.0, 0.5),
)
@settings(max_examples=50, deadline=None)
def test_end_after_ready_and_positive_wire(scheme, numel, world, ready):
    net = fresh_network()
    timing = time_allreduce(net, list(range(world)), numel,
                            CompressionSpec("qsgd", bits=4, bucket_size=128),
                            scheme, ready=ready)
    assert len(timing.end_times) == world
    assert all(t > ready for t in timing.end_times)
    assert timing.wire_bytes > 0
    assert timing.kernel_calls > 0


@given(
    scheme=st.sampled_from(["sra", "ring", "tree"]),
    numel=st.integers(4_000_000, 50_000_000),
)
@settings(max_examples=30, deadline=None)
def test_compression_never_slower_at_scale(scheme, numel):
    """For bandwidth-dominated buffers (16+ MB), 4-bit quantization never
    makes the commodity allreduce slower than dense.  (Small buffers are
    launch-overhead-bound and genuinely get *slower* under compression —
    which is precisely why CGX filters small layers.)"""
    dense = time_allreduce(fresh_network(), list(range(8)), numel,
                           CompressionSpec("none"), scheme).end
    q4 = time_allreduce(fresh_network(), list(range(8)), numel,
                        CompressionSpec("qsgd", bits=4, bucket_size=128),
                        scheme).end
    assert q4 <= dense * 1.05


@given(numel=st.integers(10_000, 2_000_000),
       scheme=st.sampled_from(SCHEMES))
@settings(max_examples=30, deadline=None)
def test_makespan_bounded_below_by_physics(numel, scheme):
    """No schedule beats the physical floor: the bottleneck link must
    carry at least one compressed chunk."""
    spec = CompressionSpec("qsgd", bits=4, bucket_size=128)
    net = fresh_network()
    timing = time_allreduce(net, list(range(8)), numel, spec, scheme)
    slowest_link = min(l.bandwidth for l in net.topology.links.values())
    chunk_bytes = spec.wire_bytes(numel // 8)
    assert timing.end >= chunk_bytes / slowest_link


@given(numel=st.integers(1_000, 1_000_000))
@settings(max_examples=20, deadline=None)
def test_wire_bytes_independent_of_backend(numel):
    """Backends change timing, never payload size."""
    spec = CompressionSpec("qsgd", bits=4, bucket_size=128)
    wires = set()
    for backend in ["shm", "nccl", "mpi", "gloo"]:
        timing = time_allreduce(fresh_network(backend=backend),
                                list(range(8)), numel, spec, "sra")
        wires.add(timing.wire_bytes)
    assert len(wires) == 1


@given(world=st.sampled_from([2, 4, 8]),
       numel=st.integers(10_000, 1_000_000))
@settings(max_examples=20, deadline=None)
def test_more_bits_more_wire_time_ordering(world, numel):
    """Wire bytes rise monotonically with bit-width at fixed size."""
    wires = []
    for bits in [2, 4, 8]:
        spec = CompressionSpec("qsgd", bits=bits, bucket_size=128)
        timing = time_allreduce(fresh_network(), list(range(world)), numel,
                                spec, "sra")
        wires.append(timing.wire_bytes)
    assert wires[0] < wires[1] < wires[2]


def test_stale_ready_times_propagate():
    """A later-ready rank delays a full collective by at least its gap."""
    ready = [0.0] * 7 + [0.3]
    timing = time_allreduce(fresh_network(), list(range(8)), 1 << 20,
                            CompressionSpec("none"), "sra", ready=ready)
    assert timing.end > 0.3


def test_hier_respects_node_boundaries_on_cluster():
    from repro.cluster import make_cluster

    cluster = make_cluster("genesis-4x3090", 2)
    net = Network(cluster, "nccl")
    net.enable_trace()
    time_allreduce(net, list(range(8)), 1 << 20,
                   CompressionSpec("qsgd", bits=4, bucket_size=128), "hier")
    # only the leaders (ranks 0 and 4) exchange cross-node traffic
    cross = [(t.src, t.dst) for t in net.trace
             if cluster.node_of[t.src] != cluster.node_of[t.dst]]
    assert cross
    assert all({src, dst} == {0, 4} for src, dst in cross)

"""Tests for the cluster simulator: GPUs, topologies, networks, machines."""

import pytest

from repro.cluster import (
    BACKENDS,
    GPUS,
    Link,
    Resource,
    ResourcePool,
    Topology,
    get_backend,
    get_gpu,
    get_machine,
    make_cluster,
    nvlink_mesh,
    pcie_dual_root,
)
from repro.models import build_spec


# -- simclock -----------------------------------------------------------------

def test_resource_serializes_tasks():
    r = Resource("link")
    s1, e1 = r.schedule(0.0, 1.0)
    s2, e2 = r.schedule(0.0, 1.0)
    assert (s1, e1) == (0.0, 1.0)
    assert (s2, e2) == (1.0, 2.0)
    assert r.busy_time == 2.0


def test_resource_respects_ready_time():
    r = Resource("x")
    s, e = r.schedule(5.0, 1.0)
    assert (s, e) == (5.0, 6.0)


def test_resource_rejects_negative_duration():
    with pytest.raises(ValueError):
        Resource("x").schedule(0.0, -1.0)


def test_pool_schedule_path_waits_for_all():
    pool = ResourcePool()
    pool.get("a").schedule(0.0, 3.0)
    start, end = pool.schedule_path(["a", "b"], 0.0, 1.0)
    assert start == 3.0 and end == 4.0
    assert pool.get("b").busy_until == 4.0


def test_pool_reset_and_utilization():
    pool = ResourcePool()
    pool.get("a").schedule(0.0, 2.0)
    assert pool.utilization(4.0)["a"] == pytest.approx(0.5)
    pool.reset()
    assert pool.get("a").busy_until == 0.0


# -- GPUs ----------------------------------------------------------------------

def test_gpu_catalog_matches_table1():
    v100 = get_gpu("V100")
    assert v100.gpu_direct and v100.memory_gb == 16
    rtx = get_gpu("RTX3090")
    assert not rtx.gpu_direct and rtx.memory_gb == 24
    assert get_gpu("RTX2080Ti").memory_gb == 10
    assert len(GPUS) == 4


def test_single_gpu_throughput_reproduces_anchors():
    """The calibration must reproduce Table 1's measured throughputs."""
    for gpu_name, model, expected in [
        ("V100", "resnet50", 1226.0),
        ("RTX3090", "resnet50", 850.0),
        ("V100", "transformer_xl", 37_000.0),
        ("RTX3090", "transformer_xl", 39_000.0),
        ("RTX2080Ti", "transformer_xl", 13_000.0),
    ]:
        gpu = get_gpu(gpu_name)
        spec = build_spec(model)
        batch = 32
        step = gpu.step_compute_time(spec, batch)
        items = batch * spec.items_per_sample
        assert items / step == pytest.approx(expected, rel=1e-6)


def test_memory_limits_batch():
    spec = build_spec("transformer_xl")
    assert get_gpu("RTX2080Ti").max_batch_per_gpu(spec) < \
        get_gpu("RTX3090").max_batch_per_gpu(spec)


def test_unknown_gpu_raises():
    with pytest.raises(KeyError):
        get_gpu("H100")


# -- topologies ------------------------------------------------------------------

def test_pcie_topology_routes_and_numa():
    topo = pcie_dual_root(8)
    assert topo.n_gpus == 8
    assert topo.numa_of == [0, 0, 0, 0, 1, 1, 1, 1]
    # same-NUMA route avoids QPI
    same = [l.name for l in topo.path(0, 1)]
    assert not any("qpi" in n for n in same)
    cross = [l.name for l in topo.path(0, 7)]
    assert any("qpi" in n for n in cross)
    assert topo.staged_through_host


def test_pcie_single_root():
    topo = pcie_dual_root(4, roots=1)
    assert topo.numa_of == [0, 0, 0, 0]
    assert not any("qpi" in name for name in topo.links)


def test_pcie_rejects_odd_dual_root():
    with pytest.raises(ValueError):
        pcie_dual_root(7)


def test_nvlink_mesh_neighbors_direct():
    topo = nvlink_mesh(8)
    assert len(topo.path(0, 1)) == 1
    assert len(topo.path(0, 4)) == 4  # opposite side of the ring
    assert not topo.staged_through_host


def test_nvlink_routes_shortest_way():
    topo = nvlink_mesh(8)
    assert len(topo.path(0, 7)) == 1  # wraps around


def test_path_bandwidth_and_latency():
    topo = pcie_dual_root(8, pcie_bandwidth=14e9, qpi_bandwidth=11e9)
    assert topo.path_bandwidth(0, 7) == 11e9  # QPI bottleneck
    assert topo.path_bandwidth(0, 1) == 14e9
    assert topo.path_latency(0, 7) > topo.path_latency(0, 1)


def test_no_route_raises():
    topo = Topology("empty", 2, {}, {})
    with pytest.raises(KeyError):
        topo.path(0, 1)


def test_self_route_is_empty():
    topo = pcie_dual_root(4, roots=1)
    assert topo.path(2, 2) == []
    assert topo.path_bandwidth(2, 2) == float("inf")


def test_describe_renders_numa_groups():
    text = pcie_dual_root(8).describe()
    assert "NUMA0" in text and "NUMA1" in text
    assert "staged via host memory" in text


def test_link_validation():
    with pytest.raises(ValueError):
        Link("bad", bandwidth=0, latency=0)
    with pytest.raises(ValueError):
        Link("bad", bandwidth=1e9, latency=-1)


def test_multinode_cluster_structure():
    cluster = make_cluster("genesis-4x3090", 4)
    assert cluster.n_gpus == 16
    assert cluster.node_of == [0] * 4 + [1] * 4 + [2] * 4 + [3] * 4
    cross = [l.name for l in cluster.path(0, 12)]
    assert any("eth" in n for n in cross)
    intra = [l.name for l in cluster.path(0, 1)]
    assert not any("eth" in n for n in intra)
    assert cluster.gpus_on_node(2) == [8, 9, 10, 11]


# -- network --------------------------------------------------------------------

def test_transfer_time_scales_with_bytes():
    net = get_machine("rtx3090-8x").network("shm")
    t_small = net.transfer(0, 1, 1 << 20, 0.0)
    net.reset()
    t_large = net.transfer(0, 1, 1 << 26, 0.0)
    assert t_large > t_small * 10


def test_concurrent_transfers_contend_on_shared_links():
    """Two flows through the same host-memory bridge serialize there."""
    net = get_machine("rtx3090-8x").network("shm")
    nbytes = 1 << 26
    solo = net.transfer(0, 1, nbytes, 0.0)
    net.reset()
    net.transfer(0, 1, nbytes, 0.0)
    contended = net.transfer(2, 3, nbytes, 0.0)  # same NUMA root
    assert contended > solo * 1.15


def test_disjoint_paths_do_not_contend():
    net = get_machine("dgx1").network("nccl")
    nbytes = 1 << 26
    solo = net.transfer(0, 1, nbytes, 0.0)
    net.reset()
    net.transfer(0, 1, nbytes, 0.0)
    other = net.transfer(4, 5, nbytes, 0.0)  # different nvlink pair
    assert other == pytest.approx(solo, rel=1e-6)


def test_commodity_vs_nvlink_bandwidth_gap():
    """Reproduces Table 2's measured difference: ~14 GB/s bus vs
    ~100 GB/s NVLink point-to-point."""
    commodity = get_machine("rtx3090-8x").network("shm")
    dgx = get_machine("dgx1").network("shm")
    bw_commodity = commodity.measure_p2p_bandwidth(0, 1)
    bw_dgx = dgx.measure_p2p_bandwidth(0, 1)
    assert bw_dgx > 5 * bw_commodity
    assert 4e9 < bw_commodity < 20e9
    assert 50e9 < bw_dgx < 120e9


def test_zero_gpu_transfer_is_noop():
    net = get_machine("dgx1").network("shm")
    assert net.transfer(3, 3, 1 << 20, 7.0) == 7.0


def test_network_trace():
    net = get_machine("dgx1").network("shm")
    net.enable_trace()
    net.transfer(0, 1, 1024, 0.0)
    assert len(net.trace) == 1
    assert net.trace[0].src == 0 and net.trace[0].nbytes == 1024


def test_chrome_trace_export(tmp_path):
    import json

    from repro.cluster import export_chrome_trace

    net = get_machine("dgx1").network("shm")
    net.enable_trace()
    net.transfer(0, 1, 1 << 20, 0.0)
    net.transfer(1, 2, 1 << 20, 0.0)
    path = tmp_path / "trace.json"
    count = export_chrome_trace(net, str(path))
    assert count == 2
    data = json.loads(path.read_text())
    events = data["traceEvents"]
    assert len(events) == 2
    assert events[0]["ph"] == "X"
    assert events[0]["tid"] == 0 and events[1]["tid"] == 1
    assert events[0]["dur"] > 0


def test_run_kernel_serializes_per_engine():
    net = get_machine("dgx1").network("shm")
    e1 = net.run_kernel(0, "compress", 1e-3, 0.0)
    e2 = net.run_kernel(0, "compress", 1e-3, 0.0)
    e3 = net.run_kernel(1, "compress", 1e-3, 0.0)  # other GPU: parallel
    assert e2 == pytest.approx(2e-3)
    assert e3 == pytest.approx(1e-3)


# -- backends / machines ----------------------------------------------------------

def test_backend_catalog():
    assert set(BACKENDS) == {"shm", "nccl", "mpi", "gloo"}
    assert get_backend("shm").alpha < get_backend("nccl").alpha
    assert get_backend("mpi").sync_per_op > 0
    assert not get_backend("shm").multinode
    # the paper: NCCL showed better performance than OpenMPI or Gloo
    assert get_backend("gloo").copy_factor >= get_backend("nccl").copy_factor
    assert get_backend("gloo").alpha > get_backend("nccl").alpha


def test_backend_message_time_components():
    shm = get_backend("shm")
    t = shm.message_time(14e9, 14e9, 0.0)  # 1 second of bytes
    assert t == pytest.approx(1.0 + shm.alpha)


def test_machine_catalog_matches_table2():
    m3090 = get_machine("rtx3090-8x")
    assert m3090.n_gpus == 8 and m3090.interconnect == "pcie"
    dgx = get_machine("dgx1")
    assert dgx.interconnect == "nvlink" and dgx.gpu.name == "V100"
    assert get_machine("genesis-4x3090").price_per_hour == 6.8


def test_machine_subset_topologies():
    m = get_machine("rtx3090-8x")
    assert max(m.topology(4).numa_of) == 0   # 4 GPUs fit one root
    assert max(m.topology(8).numa_of) == 1   # 8 span two roots
    with pytest.raises(ValueError):
        m.topology(16)


def test_single_gpu_topology_degenerate():
    topo = get_machine("dgx1").topology(1)
    assert topo.n_gpus == 1 and not topo.links

"""Property test: the wire-byte claim equals the serialized payload.

``spec.wire_bytes`` feeds the perf model (Fig. 3/7 step times) and the
adaptive bit-width objective; ``serialize_payload`` produces the actual
bytes a real transport would move.  For every method, over random
shapes, the claim, the ``Compressed.nbytes`` declaration, and the
measured serialization must agree exactly — including the
``wire_dtype_bits`` padding cases where 4-bit codes travel one byte
each (the GRACE INT8 wire format).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compression import CompressionSpec, make_compressor
from repro.core.serialization import measured_wire_bytes, serialize_payload

# one strategy per method, drawing the spec parameters that change the
# wire layout (bits, buckets, density, rank, padding width)
SPEC_STRATEGIES = {
    "none": st.just(CompressionSpec("none")),
    "fp16": st.just(CompressionSpec("fp16")),
    "qsgd": st.builds(
        lambda b, bk: CompressionSpec("qsgd", bits=b, bucket_size=bk),
        st.integers(2, 8), st.sampled_from([7, 16, 32, 128])),
    "qsgd-padded": st.builds(
        lambda b, bk: CompressionSpec("qsgd", bits=b, bucket_size=bk,
                                      wire_dtype_bits=8),
        st.integers(2, 8), st.sampled_from([16, 32, 128])),
    "qsgd-l2": st.builds(
        lambda b: CompressionSpec("qsgd", bits=b, bucket_size=32,
                                  scaling="l2"),
        st.integers(2, 8)),
    "nuq": st.builds(
        lambda b, bk: CompressionSpec("nuq", bits=b, bucket_size=bk),
        st.integers(2, 8), st.sampled_from([16, 64, 128])),
    "topk": st.builds(
        lambda d: CompressionSpec("topk", density=d),
        st.sampled_from([0.01, 0.05, 0.25, 1.0])),
    "dgc": st.builds(
        lambda d: CompressionSpec("dgc", density=d),
        st.sampled_from([0.01, 0.1, 0.5])),
    "onebit": st.builds(
        lambda bk: CompressionSpec("onebit", bucket_size=bk),
        st.sampled_from([8, 32, 512])),
    "powersgd": st.builds(
        lambda r: CompressionSpec("powersgd", rank=r),
        st.sampled_from([1, 2, 4, 100])),
    "fake": st.builds(
        lambda r: CompressionSpec("fake", ratio=r),
        st.sampled_from([2.0, 4.0, 16.0])),
}

SHAPES = st.one_of(
    st.integers(1, 700).map(lambda n: (n,)),
    st.tuples(st.integers(1, 48), st.integers(1, 48)),
)


@pytest.mark.parametrize("label", sorted(SPEC_STRATEGIES),
                         ids=sorted(SPEC_STRATEGIES))
@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_wire_claim_equals_serialized_payload(label, data):
    spec = data.draw(SPEC_STRATEGIES[label])
    shape = data.draw(SHAPES)
    seed = data.draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    array = rng.standard_normal(shape).astype(np.float32)

    compressed = make_compressor(spec).compress(array, rng, key="prop")
    claimed = spec.wire_bytes(array.size, shape)
    payload = serialize_payload(compressed)

    assert compressed.nbytes == claimed, \
        f"{label} {shape}: nbytes {compressed.nbytes} != claim {claimed}"
    assert len(payload) == claimed, \
        f"{label} {shape}: serialized {len(payload)} != claim {claimed}"
    assert measured_wire_bytes(compressed) == len(payload)


def test_padded_wire_format_is_wider_than_packed():
    # wire_dtype_bits=8 ships 4-bit codes one byte each: the padding is
    # real bytes on the wire and the claim must reflect it
    packed = CompressionSpec("qsgd", bits=4, bucket_size=32)
    padded = CompressionSpec("qsgd", bits=4, bucket_size=32,
                             wire_dtype_bits=8)
    n = 256
    assert padded.wire_bytes(n) > packed.wire_bytes(n)
    rng = np.random.default_rng(0)
    x = rng.standard_normal(n).astype(np.float32)
    for spec in (packed, padded):
        compressed = make_compressor(spec).compress(x, rng, key="pad")
        assert len(serialize_payload(compressed)) == spec.wire_bytes(n)


def test_serialize_payload_rejects_unknown_method():
    # a payload whose spec names no serializer is a hard error, not a guess
    rng = np.random.default_rng(0)
    x = rng.standard_normal(64).astype(np.float32)
    compressed = make_compressor(CompressionSpec("none")).compress(x, rng)
    bad_spec = CompressionSpec.__new__(CompressionSpec)
    object.__setattr__(bad_spec, "method", "mystery")
    compressed.spec = bad_spec
    with pytest.raises(ValueError, match="no wire encoding"):
        serialize_payload(compressed)

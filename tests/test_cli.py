"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def test_simulate_outputs_throughput():
    code, text = run_cli(["simulate", "--model", "resnet50",
                          "--machine", "rtx3090-8x", "--method", "cgx"])
    assert code == 0
    assert "throughput" in text
    assert "% of linear" in text
    assert "25.6M params" in text


def test_simulate_methods_differ():
    _, cgx = run_cli(["simulate", "--model", "vit",
                      "--machine", "rtx3090-8x", "--method", "cgx"])
    _, nccl = run_cli(["simulate", "--model", "vit",
                       "--machine", "rtx3090-8x", "--method", "nccl"])
    assert cgx != nccl
    assert "scheme=ring" in nccl and "scheme=sra" in cgx


def test_simulate_gpu_count_and_scheme_override():
    code, text = run_cli(["simulate", "--model", "bert",
                          "--machine", "dgx1", "--method", "cgx",
                          "--gpus", "4", "--scheme", "ring"])
    assert code == 0
    assert "x4" in text
    assert "scheme=ring" in text


def test_simulate_rejects_unknown_model():
    with pytest.raises(SystemExit):
        run_cli(["simulate", "--model", "resnet18",
                 "--machine", "rtx3090-8x"])


def test_train_runs_and_reports():
    code, text = run_cli(["train", "--family", "mlp", "--world", "2",
                          "--steps", "30"])
    assert code == 0
    assert "final top1" in text
    assert "compression:" in text


def test_train_baseline_flag():
    code, text = run_cli(["train", "--family", "mlp", "--world", "2",
                          "--steps", "20", "--baseline"])
    assert code == 0
    assert "baseline" in text
    assert "compression: 1.0x" in text


def test_train_unknown_family_is_graceful():
    code, _ = run_cli(["train", "--family", "resnet18"])
    assert code == 2


def test_topology_describes_machine():
    code, text = run_cli(["topology", "--machine", "rtx3090-8x"])
    assert code == 0
    assert "NUMA0" in text and "NUMA1" in text
    assert "GPUDirect: False" in text


def test_topology_price_shown_for_cloud():
    _, text = run_cli(["topology", "--machine", "genesis-4x3090"])
    assert "$6.8/hour" in text


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_experiment_list():
    code, text = run_cli(["experiment", "--list"])
    assert code == 0
    assert "fig3" in text and "table7" in text
    assert "bench_table7_adaptive.py" in text


def test_experiment_default_lists():
    code, text = run_cli(["experiment"])
    assert code == 0
    assert "available experiments" in text


def test_experiment_unknown_name():
    code, _ = run_cli(["experiment", "figure99"])
    assert code == 2


def test_experiment_registry_files_exist():
    import os

    from repro.cli import EXPERIMENTS

    bench_dir = os.path.join(os.path.dirname(__file__), "..", "benchmarks")
    for bench in EXPERIMENTS.values():
        assert os.path.exists(os.path.join(bench_dir, bench)), bench


def test_simulate_with_config_file(tmp_path):
    from repro.core import CGXConfig
    from repro.core.serialization import dump_config

    config = CGXConfig.cgx_default()
    config.scheme = "ring"
    path = tmp_path / "cfg.json"
    dump_config(config, str(path))
    code, text = run_cli(["simulate", "--model", "vit",
                          "--machine", "rtx3090-8x",
                          "--config", str(path)])
    assert code == 0
    assert "scheme=ring" in text
    assert str(path) in text


def test_sched_runs_a_fleet(tmp_path):
    log1 = tmp_path / "fleet1.json"
    log2 = tmp_path / "fleet2.json"
    code, text = run_cli(["sched", "--jobs", "8", "--policy", "packed",
                          "--seed", "7", "--log", str(log1)])
    assert code == 0
    assert "fairness" in text and "queueing" in text
    code, _ = run_cli(["sched", "--jobs", "8", "--policy", "packed",
                       "--seed", "7", "--log", str(log2)])
    assert code == 0
    assert log1.read_bytes() == log2.read_bytes()   # canonical fleet log


def test_sched_json_and_trace_output(tmp_path):
    import json

    trace = tmp_path / "fleet_trace.json"
    code, text = run_cli(["sched", "--jobs", "6", "--seed", "3", "--json",
                          "--trace", str(trace), "--worlds", "2,4"])
    assert code == 0
    payload = json.loads(text.split("\ntrace")[0])   # JSON, then trace line
    assert payload["completed"] == 6
    assert 0 < payload["fairness"] <= 1
    events = json.loads(trace.read_text())["traceEvents"]
    assert any(e["ph"] == "M" for e in events)      # per-job lanes

"""Tests for partial (quorum) allreduce — the hybrid-sync extension."""

import numpy as np
import pytest

from repro.cluster import get_machine
from repro.collectives import PartialAllreduce, time_partial_allreduce
from repro.compression import CompressionSpec, make_compressor


def dense():
    return make_compressor(CompressionSpec("none"))


def make_buffers(world, numel=50, seed=0):
    return [np.random.default_rng(seed + i).normal(size=numel)
            .astype(np.float32) for i in range(world)]


def test_full_quorum_equals_allreduce():
    world = 4
    pa = PartialAllreduce(world)
    bufs = make_buffers(world)
    outs, _ = pa.reduce(bufs, list(range(world)), dense(),
                        np.random.default_rng(0))
    exact = np.sum(bufs, axis=0)
    np.testing.assert_allclose(outs[0], exact, rtol=1e-4, atol=1e-5)


def test_partial_result_sums_quorum_only():
    """A quorum step sums the participants' gradients; the skipped
    ranks' mass arrives later via the carry (no rescaling — rescaling
    would double-count the carried mass when it finally lands)."""
    world = 4
    pa = PartialAllreduce(world)
    bufs = [np.ones(10, dtype=np.float32) for _ in range(world)]
    outs, _ = pa.reduce(bufs, [0, 1], dense(), np.random.default_rng(0))
    np.testing.assert_allclose(outs[0], 2.0 * np.ones(10), rtol=1e-5)


def test_all_ranks_receive_identical_results():
    world = 5
    pa = PartialAllreduce(world)
    bufs = make_buffers(world)
    comp = make_compressor(CompressionSpec("qsgd", bits=4, bucket_size=16))
    outs, _ = pa.reduce(bufs, [0, 2, 4], comp, np.random.default_rng(1))
    for out in outs[1:]:
        np.testing.assert_array_equal(outs[0], out)


def test_carry_accumulates_and_drains():
    world = 3
    pa = PartialAllreduce(world)
    bufs = make_buffers(world)
    pa.reduce(bufs, [0, 1], dense(), np.random.default_rng(0), key="k")
    assert pa.carry_norm("k", 2) > 0
    assert pa.carry_norm("k", 0) == 0.0
    # skipped again: carry grows
    first = pa.carry_norm("k", 2)
    pa.reduce(bufs, [0, 1], dense(), np.random.default_rng(1), key="k")
    assert pa.carry_norm("k", 2) > first
    # finally participates: carry drains into the sum
    outs, _ = pa.reduce(bufs, [0, 1, 2], dense(),
                        np.random.default_rng(2), key="k")
    assert pa.carry_norm("k", 2) == 0.0
    expected = np.sum(bufs, axis=0) + 2 * bufs[2]
    np.testing.assert_allclose(outs[0], expected, rtol=1e-4, atol=1e-4)


def test_no_mass_lost_over_rotating_quorums():
    """Conservation: over a cycle where every rank eventually
    participates, total transmitted mass equals total generated mass."""
    world = 3
    pa = PartialAllreduce(world)
    grad = [np.full(4, float(i + 1), dtype=np.float32) for i in range(world)]
    total = np.zeros(4, dtype=np.float64)
    schedule = [[0, 1], [1, 2], [0, 2], [0, 1, 2]]
    for step, participants in enumerate(schedule):
        outs, _ = pa.reduce(grad, participants, dense(),
                            np.random.default_rng(step), key="c")
        total += outs[0] / world  # the averaged update
    # generated mass per element: 4 steps * mean(1,2,3) = 8; carries all
    # drained on the final full step
    np.testing.assert_allclose(total, np.full(4, 8.0), rtol=1e-4)


def test_validation():
    pa = PartialAllreduce(2)
    bufs = make_buffers(2)
    with pytest.raises(ValueError):
        pa.reduce(bufs, [], dense(), np.random.default_rng(0))
    with pytest.raises(ValueError):
        pa.reduce(bufs, [5], dense(), np.random.default_rng(0))
    with pytest.raises(ValueError):
        pa.reduce(make_buffers(3), [0], dense(), np.random.default_rng(0))
    with pytest.raises(ValueError):
        PartialAllreduce(0)


def test_reset_clears_carries():
    pa = PartialAllreduce(2)
    pa.reduce(make_buffers(2), [0], dense(), np.random.default_rng(0),
              key="r")
    pa.reset()
    assert pa.carry_norm("r", 1) == 0.0


# -- timing ----------------------------------------------------------------------

def test_timed_partial_does_not_wait_for_straggler():
    net = get_machine("rtx3090-8x").network("shm")
    ready = [0.001] * 7 + [0.5]
    timing = time_partial_allreduce(
        net, list(range(8)), 1 << 22,
        CompressionSpec("qsgd", bits=4, bucket_size=128),
        quorum=7, ready=ready,
    )
    fast_end = max(timing.end_times[i] for i in range(7))
    assert fast_end < 0.1            # fast ranks unaffected by rank 7
    assert timing.end_times[7] >= 0.5  # straggler bounded by itself


def test_timed_full_quorum_waits():
    net = get_machine("rtx3090-8x").network("shm")
    ready = [0.001] * 7 + [0.5]
    timing = time_partial_allreduce(
        net, list(range(8)), 1 << 22,
        CompressionSpec("qsgd", bits=4, bucket_size=128),
        quorum=8, ready=ready,
    )
    assert min(timing.end_times) > 0.5  # everyone waits for the straggler


def test_timed_partial_validation():
    net = get_machine("rtx3090-8x").network("shm")
    with pytest.raises(ValueError):
        time_partial_allreduce(net, [0, 1], 100, CompressionSpec("none"),
                               quorum=3, ready=[0.0, 0.0])
    with pytest.raises(ValueError):
        time_partial_allreduce(net, [0, 1], 100, CompressionSpec("none"),
                               quorum=1, ready=[0.0])


def test_partial_training_with_rotating_stragglers():
    """End-to-end: training where one worker is skipped each step still
    converges and replicas stay identical (elastic consistency)."""
    from repro.nn import SGD, build_model
    from repro.nn.data import SyntheticVectors
    from repro.nn.loss import softmax_cross_entropy

    world = 3
    replicas = [build_model("mlp", seed=11) for _ in range(world)]
    opts = [SGD(r.parameters(), lr=0.05, momentum=0.9) for r in replicas]
    pa = PartialAllreduce(world)
    comp = make_compressor(CompressionSpec("qsgd", bits=4, bucket_size=128))
    data = SyntheticVectors(seed=0)
    rng = np.random.default_rng(2)
    for step in range(60):
        per_worker = []
        for replica in replicas:
            replica.zero_grad()
            x, y = data.sample(32, rng)
            _, grad = softmax_cross_entropy(replica(x), y)
            replica.backward(grad)
            per_worker.append([p.grad for p in replica.parameters()])
        skipped = step % world
        participants = [r for r in range(world) if r != skipped]
        for p_idx in range(len(per_worker[0])):
            bufs = [per_worker[w][p_idx] for w in range(world)]
            outs, _ = pa.reduce(bufs, participants, comp,
                                np.random.default_rng(step * 100 + p_idx),
                                key=f"p{p_idx}")
            for w, replica in enumerate(replicas):
                replica.parameters()[p_idx].grad = outs[w] / world
        for opt in opts:
            opt.step()
    for (pa_, pb) in zip(replicas[0].parameters(), replicas[1].parameters()):
        np.testing.assert_array_equal(pa_.data, pb.data)
    xe, ye = data.eval_set(256)
    accuracy = float((replicas[0](xe).argmax(-1) == ye).mean())
    assert accuracy > 0.9

"""Tests for the full-size model inventories."""

import pytest

from repro.models import available_specs, build_spec


def test_available_specs_cover_evaluation_models():
    assert set(available_specs()) == {
        "resnet50", "vgg16", "vit", "transformer_xl", "bert", "gpt2"
    }


@pytest.mark.parametrize("name,expected_millions,tolerance", [
    ("resnet50", 25.6, 0.3),       # torchvision: 25.56 M
    ("vgg16", 138.4, 0.5),         # torchvision: 138.36 M
    ("vit", 86.6, 1.0),            # ViT-B/16: 86.6 M
    ("bert", 109.0, 1.5),          # BERT-Base: 109.5 M
    ("gpt2", 124.4, 1.5),          # GPT-2 small: 124.4 M
    ("transformer_xl", 188.0, 5.0),  # TXL-base + tied WT-103 embedding
])
def test_parameter_counts_match_real_architectures(name, expected_millions,
                                                   tolerance):
    spec = build_spec(name)
    millions = spec.num_parameters / 1e6
    assert abs(millions - expected_millions) < tolerance, \
        f"{name}: {millions:.2f}M vs expected {expected_millions}M"


def test_backward_order_reverses_positions():
    spec = build_spec("resnet50")
    order = spec.backward_order()
    positions = [t.position for t in order]
    assert positions == sorted(positions, reverse=True)
    # the stem conv is the last gradient to appear
    assert order[-1].name == "conv1.weight"


def test_txl_embedding_is_first_layer_hence_synchronized_last():
    """Appendix E: the giant embedding sits at the input, so its gradient
    is emitted last during backward."""
    spec = build_spec("transformer_xl")
    order = spec.backward_order()
    assert order[-1].name == "word_emb.weight"
    embedding = order[-1]
    assert embedding.numel > 0.5 * spec.num_parameters


def test_flops_positive_and_dominated_by_compute_layers():
    for name in available_specs():
        spec = build_spec(name)
        assert spec.flops_per_item > 0
        norm_flops = sum(t.flops for t in spec.tensors if t.kind == "norm")
        assert norm_flops < 0.01 * spec.flops_per_item


def test_tensor_kinds_are_labelled():
    spec = build_spec("bert")
    kinds = {t.kind for t in spec.tensors}
    assert {"embedding", "linear", "norm", "bias"} <= kinds
    conv_spec = build_spec("resnet50")
    assert any(t.kind == "conv" for t in conv_spec.tensors)


def test_matrix_shapes_for_decomposition():
    spec = build_spec("vit")
    qkv = next(t for t in spec.tensors if "qkv" in t.name)
    rows, cols = qkv.matrix_shape
    assert rows * cols == qkv.numel
    assert rows > 1 and cols > 1
    bias = next(t for t in spec.tensors if t.kind == "bias")
    assert bias.matrix_shape[0] == 1


def test_gradient_bytes():
    spec = build_spec("resnet50")
    assert spec.gradient_bytes == spec.num_parameters * 4


def test_lm_workload_metadata():
    txl = build_spec("transformer_xl")
    assert txl.item_unit == "tokens"
    assert txl.items_per_sample == 192
    resnet = build_spec("resnet50")
    assert resnet.item_unit == "imgs"
    assert resnet.items_per_sample == 1


def test_bert_rate_scale_reflects_fp32_recipe():
    assert build_spec("bert").rate_scale < 0.1
    assert build_spec("transformer_xl").rate_scale == 1.0


def test_unknown_spec_raises():
    with pytest.raises(KeyError):
        build_spec("resnet18")

"""Tests for optimizers, clipping and loss functions."""

import numpy as np
import pytest

from repro.nn import Parameter, SGD, Adam, clip_grad_norm, global_grad_norm
from repro.nn.loss import (
    mse_loss,
    perplexity,
    sequence_cross_entropy,
    softmax_cross_entropy,
    span_extraction_loss,
)


def make_param(values):
    p = Parameter(np.asarray(values, dtype=np.float32))
    p.grad = np.ones_like(p.data)
    return p


def test_sgd_plain_step():
    p = make_param([1.0, 2.0])
    SGD([p], lr=0.1).step()
    np.testing.assert_allclose(p.data, [0.9, 1.9])


def test_sgd_momentum_accumulates():
    p = make_param([0.0])
    opt = SGD([p], lr=1.0, momentum=0.9)
    opt.step()        # v=1, x=-1
    p.grad = np.ones(1, dtype=np.float32)
    opt.step()        # v=1.9, x=-2.9
    np.testing.assert_allclose(p.data, [-2.9], rtol=1e-6)


def test_sgd_weight_decay():
    p = make_param([10.0])
    p.grad = np.zeros(1, dtype=np.float32)
    SGD([p], lr=0.1, weight_decay=0.5).step()
    np.testing.assert_allclose(p.data, [10.0 - 0.1 * 0.5 * 10.0])


def test_sgd_nesterov_requires_momentum():
    with pytest.raises(ValueError):
        SGD([make_param([1.0])], lr=0.1, nesterov=True)


def test_sgd_skips_missing_gradients():
    p = Parameter(np.ones(2, dtype=np.float32))
    SGD([p], lr=0.1).step()
    np.testing.assert_array_equal(p.data, [1.0, 1.0])


def test_invalid_lr_rejected():
    with pytest.raises(ValueError):
        SGD([make_param([1.0])], lr=0.0)


def test_adam_first_step_size():
    """After one step Adam moves by ~lr regardless of gradient scale."""
    for scale in [1e-3, 1.0, 1e3]:
        p = make_param([0.0])
        p.grad = np.array([scale], dtype=np.float32)
        Adam([p], lr=0.01).step()
        np.testing.assert_allclose(p.data, [-0.01], rtol=1e-4)


def test_adam_converges_on_quadratic():
    p = make_param([5.0])
    opt = Adam([p], lr=0.3)
    for _ in range(200):
        p.grad = 2.0 * p.data  # d/dx x^2
        opt.step()
    assert abs(float(p.data[0])) < 0.05


def test_sgd_converges_on_quadratic():
    p = make_param([5.0])
    opt = SGD([p], lr=0.1, momentum=0.9)
    for _ in range(200):
        p.grad = 2.0 * p.data
        opt.step()
    assert abs(float(p.data[0])) < 1e-2


def test_global_grad_norm():
    p1, p2 = make_param([3.0]), make_param([4.0])
    p1.grad = np.array([3.0], dtype=np.float32)
    p2.grad = np.array([4.0], dtype=np.float32)
    assert global_grad_norm([p1, p2]) == pytest.approx(5.0)


def test_clip_grad_norm_scales_down():
    p = make_param([0.0, 0.0])
    p.grad = np.array([3.0, 4.0], dtype=np.float32)
    pre = clip_grad_norm([p], max_norm=1.0)
    assert pre == pytest.approx(5.0)
    np.testing.assert_allclose(p.grad, [0.6, 0.8], rtol=1e-6)


def test_clip_grad_norm_no_op_below_threshold():
    p = make_param([0.0])
    p.grad = np.array([0.5], dtype=np.float32)
    clip_grad_norm([p], max_norm=1.0)
    np.testing.assert_allclose(p.grad, [0.5])


# -- losses ----------------------------------------------------------------

def test_cross_entropy_gradient_numeric():
    rng = np.random.default_rng(0)
    logits = rng.normal(size=(4, 6))
    targets = np.array([0, 2, 5, 1])
    _, grad = softmax_cross_entropy(logits, targets)
    eps = 1e-5
    for idx in [(0, 0), (1, 3), (3, 5)]:
        hi = logits.copy()
        hi[idx] += eps
        lo = logits.copy()
        lo[idx] -= eps
        numeric = (softmax_cross_entropy(hi, targets)[0]
                   - softmax_cross_entropy(lo, targets)[0]) / (2 * eps)
        assert grad[idx] == pytest.approx(numeric, rel=1e-3, abs=1e-6)


def test_cross_entropy_perfect_prediction_near_zero():
    logits = np.full((2, 3), -20.0)
    logits[0, 1] = 20.0
    logits[1, 2] = 20.0
    loss, _ = softmax_cross_entropy(logits, np.array([1, 2]))
    assert loss < 1e-6


def test_sequence_cross_entropy_matches_flat():
    rng = np.random.default_rng(1)
    logits = rng.normal(size=(2, 3, 5))
    targets = rng.integers(0, 5, size=(2, 3))
    seq_loss, seq_grad = sequence_cross_entropy(logits, targets)
    flat_loss, _ = softmax_cross_entropy(logits.reshape(6, 5),
                                         targets.reshape(-1))
    assert seq_loss == pytest.approx(flat_loss)
    assert seq_grad.shape == logits.shape


def test_span_loss_symmetric_in_heads():
    rng = np.random.default_rng(2)
    logits = rng.normal(size=(3, 8, 2))
    starts = np.array([1, 2, 3])
    ends = np.array([2, 4, 5])
    loss, grad = span_extraction_loss(logits, starts, ends)
    assert grad.shape == logits.shape
    assert loss > 0
    # gradient on the start head sums to zero per sample (softmax CE)
    np.testing.assert_allclose(grad[:, :, 0].sum(axis=1), np.zeros(3),
                               atol=1e-7)


def test_mse_loss_and_grad():
    pred = np.array([1.0, 2.0])
    target = np.array([0.0, 0.0])
    loss, grad = mse_loss(pred, target)
    assert loss == pytest.approx(2.5)
    np.testing.assert_allclose(grad, [1.0, 2.0])


def test_perplexity_monotone_and_capped():
    assert perplexity(1.0) == pytest.approx(np.e)
    assert perplexity(0.5) < perplexity(1.0)
    assert np.isfinite(perplexity(1e9))

"""Job model for the fleet scheduler: specs, states, seeded workloads."""

import pytest

from repro.sched import (DEFAULT_FLEET_MODELS, JobSpec, JobState,
                         sample_fleet)


def test_jobspec_validation():
    good = JobSpec(1, "resnet50", 4, 0.0, 3)
    assert good.method == "cgx" and good.throttle == 1.0
    with pytest.raises(ValueError):   # 0 is the untagged trace lane
        JobSpec(0, "resnet50", 4, 0.0, 3)
    with pytest.raises(ValueError):
        JobSpec(1, "resnet50", 0, 0.0, 3)
    with pytest.raises(ValueError):
        JobSpec(1, "resnet50", 4, 0.0, 0)
    with pytest.raises(ValueError):
        JobSpec(1, "resnet50", 4, -1.0, 3)
    with pytest.raises(ValueError):
        JobSpec(1, "resnet50", 4, 0.0, 3, method="horovod")
    with pytest.raises(ValueError):
        JobSpec(1, "resnet50", 4, 0.0, 3, throttle=0.0)
    with pytest.raises(ValueError):
        JobSpec(1, "resnet50", 4, 0.0, 3, throttle=1.5)


def test_build_config_cgx_vs_nccl():
    cgx = JobSpec(1, "resnet50", 4, 0.0, 3, bits=2, scheme="ring")
    config, mode = cgx.build_config()
    assert mode == "cgx"
    assert config.compression.method == "qsgd"
    assert config.compression.bits == 2
    assert config.scheme == "ring"

    nccl = JobSpec(2, "resnet50", 4, 0.0, 3, method="nccl")
    config, mode = nccl.build_config()
    assert mode == "fused"
    assert config.compression.method == "none"


def test_jobstate_progress_properties():
    state = JobState(JobSpec(1, "resnet50", 2, 1.0, 2))
    assert state.status == "queued"
    assert state.queue_wait is None and state.mean_step_time is None
    state.admit_time = 3.5
    state.step_durations = [0.2, 0.4]
    assert state.queue_wait == pytest.approx(2.5)
    assert state.mean_step_time == pytest.approx(0.3)
    assert state.to_dict()["spec"]["job_id"] == 1


def test_sample_fleet_is_seeded_and_reproducible():
    a = sample_fleet(50, seed=3)
    b = sample_fleet(50, seed=3)
    assert a == b
    c = sample_fleet(50, seed=4)
    assert a != c


def test_sample_fleet_population_shape():
    jobs = sample_fleet(120, seed=1)
    assert [j.job_id for j in jobs] == list(range(1, 121))
    # arrivals are a strictly increasing Poisson process
    arrivals = [j.arrival for j in jobs]
    assert arrivals == sorted(arrivals) and arrivals[0] > 0
    assert {j.model for j in jobs} == set(DEFAULT_FLEET_MODELS)
    assert {j.world for j in jobs} <= {2, 4, 8}
    methods = {j.method for j in jobs}
    assert methods == {"cgx", "nccl"}   # the mixed-method fleet
    assert all(2 <= j.steps <= 5 for j in jobs)


def test_sample_fleet_rejects_bad_inputs():
    with pytest.raises(ValueError):
        sample_fleet(0)
    with pytest.raises(KeyError):
        sample_fleet(5, models=("not_a_model",))

"""Property-based tests over the placement policies.

Three laws hold for every topology, free set and job size:

* ``packed`` spills across no more machines than ``spread`` does for
  the same request — packed's biggest-bins-first spill is the minimal
  node cover, spread's load balancing can only match or exceed it;
* ``numa`` equals ``packed`` *exactly* whenever no single root complex
  can host the job (the documented fallback), and otherwise stays
  inside one NUMA group;
* sequential admissions never overlap: every placement is a duplicate-
  free subset of the then-free GPUs, so two live jobs can never share
  a GPU.
"""

from hypothesis import given, settings, strategies as st

from repro.cluster import make_cluster
from repro.sched import PLACEMENT_POLICIES, place
from repro.sched.placement import _numa, _packed

#: topologies are deterministic and reusable; build each shape once
TOPOLOGIES = {
    (machine, nodes): make_cluster(machine, nodes)
    for machine in ("rtx3090-8x", "dgx1")
    for nodes in (1, 2, 3)
}


@st.composite
def fleet_state(draw):
    """A topology, a free-GPU subset, and a job size that might fit."""
    key = draw(st.sampled_from(sorted(TOPOLOGIES)))
    topology = TOPOLOGIES[key]
    free = draw(st.sets(st.integers(0, topology.n_gpus - 1), min_size=1,
                        max_size=topology.n_gpus))
    world = draw(st.integers(1, topology.n_gpus))
    return topology, free, world


def nodes_used(topology, placement):
    return {topology.node_of[gpu] for gpu in placement}


@given(state=fleet_state())
@settings(max_examples=200, deadline=None)
def test_placements_are_valid_and_packed_never_wider_than_spread(state):
    topology, free, world = state
    placements = {policy: place(policy, topology, world, set(free))
                  for policy in PLACEMENT_POLICIES}
    for policy, placement in placements.items():
        if world > len(free):
            assert placement is None, policy
            continue
        assert placement is not None, policy   # enough free GPUs -> places
        assert len(placement) == world == len(set(placement)), policy
        assert set(placement) <= free, policy
    packed, spread = placements["packed"], placements["spread"]
    if packed is not None and spread is not None:
        assert len(nodes_used(topology, packed)) <= \
            len(nodes_used(topology, spread))


@given(state=fleet_state())
@settings(max_examples=200, deadline=None)
def test_numa_falls_back_to_packed_exactly(state):
    topology, free, world = state
    groups = {}
    for gpu in sorted(free):
        key = (topology.node_of[gpu], topology.numa_of[gpu])
        groups.setdefault(key, []).append(gpu)
    fits_one_group = any(len(gpus) >= world for gpus in groups.values())
    numa = _numa(topology, world, set(free))
    if fits_one_group:
        assert numa is not None
        keys = {(topology.node_of[g], topology.numa_of[g]) for g in numa}
        assert len(keys) == 1   # zero QPI crossings
    else:
        # the fallback is not "similar to" packed — it *is* packed
        assert numa == _packed(topology, world, set(free))


@given(
    state=fleet_state(),
    policy=st.sampled_from(PLACEMENT_POLICIES),
    worlds=st.lists(st.integers(1, 8), min_size=1, max_size=8),
)
@settings(max_examples=200, deadline=None)
def test_sequential_admissions_never_overlap(state, policy, worlds):
    topology, free, _ = state
    free = set(free)
    live = []
    for world in worlds:
        world = min(world, topology.n_gpus)
        placement = place(policy, topology, world, free)
        if placement is None:
            assert len(free) < world   # queuing only when it cannot fit
            continue
        taken = set(placement)
        assert taken <= free
        for other in live:
            assert not taken & other   # no double booking, ever
        live.append(taken)
        free -= taken

"""Property tests for elastic membership (hypothesis).

The ELA battery certifies the stock campaigns; these properties hammer
the :class:`~repro.faults.elastic.ElasticCoordinator` protocol over
random grow/shrink/warning sequences and random engine drain behavior —
the state-space corners two fixed campaigns can only sample:

* a rank is admitted at most once, ever (no double-admit);
* graceful exits never shrink the membership below the quorum floor;
* whenever a clean drain is reachable (alive, drained, ahead of the
  deadline, headroom above the floor) the warned rank takes it, and
  every warned member either drains out or degrades exactly at its
  deadline — the pure log audit stays clean on every trajectory.
"""

from hypothesis import given, settings, strategies as st

from repro.faults import (ElasticCoordinator, FaultPlan, PlanRuntime,
                          check_drain_protocol, preempt_warning, provision)

GPUS = ("RTX3090", "V100", "A6000", "RTX2080Ti")
HORIZON = 16


@st.composite
def elastic_plans(draw):
    """A random valid elastic plan: world 2..5, 0..3 joins, 0..3 warns."""
    world = draw(st.integers(min_value=2, max_value=5))
    events = []
    n_provisions = draw(st.integers(min_value=0, max_value=3))
    boot_steps = {}
    for i in range(n_provisions):
        rank = world + i
        at = draw(st.integers(min_value=1, max_value=HORIZON - 4))
        boot_steps[rank] = at
        events.append(provision(rank=rank, at=at,
                                gpu_spec=draw(st.sampled_from(GPUS))))
    candidates = list(range(world + n_provisions))
    warned = draw(st.lists(st.sampled_from(candidates), unique=True,
                           max_size=3))
    for rank in warned:
        lo = max(1, boot_steps.get(rank, 1))
        at = draw(st.integers(min_value=lo, max_value=HORIZON - 2))
        events.append(preempt_warning(
            rank=rank, at=at,
            deadline_steps=draw(st.integers(min_value=1, max_value=5))))
    return FaultPlan("prop", world, draw(st.integers(0, 99)), tuple(events))


def _drive(plan, drain_flags):
    """Run the coordinator protocol for HORIZON steps; check invariants."""
    runtime = PlanRuntime(plan)
    coord = ElasticCoordinator(runtime, plan.world)
    missed_clean_exit = []
    # run past every drain deadline so each warning resolves in-log
    end = max([HORIZON] + [e.deadline + 1 for e in plan.events
                           if e.kind == "preempt_warning"])
    for step in range(1, end + 1):
        faults = runtime.advance(step)
        dead = faults.dead_ranks()
        coord.poll_notices(step, faults)
        drained = drain_flags[(step - 1) % len(drain_flags)]
        coord.admit(step, drained)

        # membership state is internally consistent at every step
        assert coord.draining.keys() <= coord.members
        assert not coord.members & coord.departed
        assert coord.members <= set(range(plan.max_world))

        eligible = sorted(r for r, deadline in coord.draining.items()
                          if r not in dead and drained and step < deadline)
        headroom = max(0, len(coord.members) - coord.min_members)
        reachable = eligible[:headroom]
        exited = coord.end_step(step, drained, dead)
        missed_clean_exit.extend(set(reachable) - set(exited))

        # graceful exits never shrink below the quorum floor
        assert len(coord.members) >= coord.min_members
    return runtime, coord, missed_clean_exit


@given(plan=elastic_plans(),
       drain_flags=st.lists(st.booleans(), min_size=1, max_size=8))
@settings(max_examples=120, deadline=None)
def test_membership_invariants_under_random_trajectories(plan, drain_flags):
    runtime, coord, missed = _drive(plan, drain_flags)

    # drain-before-deadline holds whenever it was reachable
    assert missed == []

    # no double-admit: each provisioned rank joins at most once
    admits = [dict(r.detail)["rank"] for r in runtime.records
              if r.kind == "admit_provisioned"]
    assert len(admits) == len(set(admits))
    assert runtime.counters.provision_admissions == len(admits)

    # every warned member resolved: drained out, degraded at its exact
    # deadline, or cancelled before joining — the pure audit is clean
    assert check_drain_protocol(plan, runtime.records) == []


@given(plan=elastic_plans())
@settings(max_examples=60, deadline=None)
def test_always_drained_trajectories_admit_every_unwarned_provision(plan):
    runtime, coord, _ = _drive(plan, [True])
    warned = {e.rank for e in plan.events if e.kind == "preempt_warning"}
    for event in plan.events:
        if event.kind != "provision" or event.rank in warned:
            continue
        # with the engine always drained, an unwarned provision is
        # admitted and stays a member to the end
        assert event.rank in coord.members


@given(plan=elastic_plans(),
       drain_flags=st.lists(st.booleans(), min_size=1, max_size=8))
@settings(max_examples=60, deadline=None)
def test_same_trajectory_is_deterministic(plan, drain_flags):
    a, _, _ = _drive(plan, drain_flags)
    b, _, _ = _drive(plan, drain_flags)
    assert a.log_bytes() == b.log_bytes()

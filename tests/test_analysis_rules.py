"""Tests for the numerical-safety linter (REP001..REP006)."""

import os

import pytest

from repro.analysis import RULES, lint_source, run_lint
from repro.analysis.rules import lint_file

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "analysis")

RULE_FIXTURES = {
    "REP001": "rep001_float_eq.py",
    "REP002": os.path.join("collectives", "rep002_default_dtype.py"),
    "REP003": "rep003_state_alias.py",
    "REP004": "rep004_mutable_default.py",
    "REP005": "rep005_bare_except.py",
    "REP006": "rep006_chunk_view.py",
}


@pytest.mark.parametrize("rule", sorted(RULES))
def test_each_fixture_triggers_exactly_its_rule(rule):
    findings = lint_file(os.path.join(FIXTURES, RULE_FIXTURES[rule]))
    assert [f.rule for f in findings] == [rule]
    assert findings[0].line > 0
    assert findings[0].snippet


def test_codebase_is_clean_under_the_ruleset():
    src = os.path.join(os.path.dirname(__file__), "..", "src", "repro")
    findings = run_lint([src])
    assert findings == [], [f.render() for f in findings]


def test_rep001_requires_a_float_literal():
    assert lint_source("x = a == b\n") == []          # unknown types: silent
    assert lint_source("x = n == 3\n") == []          # int literal: fine
    found = lint_source("x = 0.5 != a\n")
    assert [f.rule for f in found] == ["REP001"]


def test_rep002_only_applies_to_hot_paths():
    src = "import numpy as np\nbuf = np.empty(10)\n"
    assert lint_source(src, path="src/repro/nn/layers.py") == []
    found = lint_source(src, path="src/repro/compression/qsgd.py")
    assert [f.rule for f in found] == ["REP002"]
    # explicit dtype (keyword or positional) is the fix
    ok = "import numpy as np\nbuf = np.empty(10, dtype=np.float32)\n"
    assert lint_source(ok, path="src/repro/compression/qsgd.py") == []
    ok_pos = "import numpy as np\nbuf = np.zeros(10, np.float32)\n"
    assert lint_source(ok_pos, path="src/repro/compression/qsgd.py") == []


def test_rep003_copy_and_fresh_values_are_clean():
    clean = (
        "class S:\n"
        "    def put(self, key, grad):\n"
        "        self._residuals[key] = grad.copy()\n"
        "    def diff(self, key, grad, restored):\n"
        "        self._residuals[key] = grad - restored\n"
    )
    assert lint_source(clean) == []
    dirty = (
        "class S:\n"
        "    def put(self, key, grad):\n"
        "        self._carry[key] = grad\n"
    )
    assert [f.rule for f in lint_source(dirty)] == ["REP003"]
    # conditional expressions alias if either branch does
    conditional = (
        "class S:\n"
        "    def put(self, key, grad, old):\n"
        "        self._carry[key] = grad.copy() if old is None else grad\n"
    )
    assert [f.rule for f in lint_source(conditional)] == ["REP003"]


def test_rep003_ignores_scalar_attribute_config():
    src = (
        "class Opt:\n"
        "    def __init__(self, momentum):\n"
        "        self.momentum = momentum\n"
    )
    assert lint_source(src) == []


def test_rep006_copies_and_output_stores_are_clean():
    # the ring pattern: chunks copied inside the comprehension
    copied = (
        "work = [c.copy() for c in split_chunks(buf, 4)]\n"
        "work[0] += 1\n"
    )
    assert lint_source(copied) == []
    # the SRA output pattern: slice-store into a fresh output buffer
    stores = (
        "out_chunks = [split_chunks(out, 4) for out in outputs]\n"
        "out_chunks[0][1][:] = decoded\n"
    )
    assert lint_source(stores) == []
    # but accumulating through any view path is flagged
    nested = (
        "per_rank = [split_chunks(b, 4) for b in bufs]\n"
        "per_rank[0][1] += update\n"
    )
    assert [f.rule for f in lint_source(nested)] == ["REP006"]
    loop = (
        "for view in split_chunks(buf, 4):\n"
        "    view += 1\n"
    )
    assert [f.rule for f in lint_source(loop)] == ["REP006"]


def test_fingerprints_are_stable_across_line_shifts():
    a = lint_source("x = 1.0 == y\n", path="m.py")[0]
    b = lint_source("# moved down\n\nx = 1.0 == y\n", path="m.py")[0]
    assert a.fingerprint == b.fingerprint
    assert a.line != b.line


def test_duplicate_lines_get_distinct_fingerprints(tmp_path):
    target = tmp_path / "dup.py"
    target.write_text("a = b == 1.0\na = b == 1.0\n")
    first, second = run_lint([str(target)])
    assert first.fingerprint != second.fingerprint

"""Tests for 1-bit SGD and Deep Gradient Compression."""

import numpy as np
import pytest

from repro.compression import (
    CompressionSpec,
    DGCCompressor,
    ErrorFeedback,
    OneBitCompressor,
    make_compressor,
)


# -- 1-bit SGD -----------------------------------------------------------------

def test_onebit_wire_accounting():
    spec = CompressionSpec("onebit", bucket_size=128)
    # 1 bit/value + 2 fp32 means per bucket
    assert spec.wire_bytes(1024) == 128 + 8 * 8
    assert spec.compression_ratio(1 << 20) > 20


def test_onebit_reconstruction_is_two_level():
    rng = np.random.default_rng(0)
    x = rng.normal(size=128).astype(np.float32)
    comp = OneBitCompressor(CompressionSpec("onebit", bucket_size=128))
    out = comp.roundtrip(x, rng)
    assert len(np.unique(out)) <= 2
    # signs preserved
    assert np.all(np.sign(out[x > 0]) >= 0)
    assert np.all(np.sign(out[x < 0]) <= 0)


def test_onebit_means_are_least_squares_optimal():
    """Reconstruction levels equal the conditional means."""
    rng = np.random.default_rng(1)
    x = rng.normal(size=128).astype(np.float32)
    comp = OneBitCompressor(CompressionSpec("onebit", bucket_size=128))
    out = comp.roundtrip(x, rng)
    pos_level = out[x >= 0][0]
    assert pos_level == pytest.approx(float(x[x >= 0].mean()), rel=1e-5)


def test_onebit_shape_and_tail_buckets():
    rng = np.random.default_rng(2)
    x = rng.normal(size=(7, 21)).astype(np.float32)   # 147: tail bucket
    comp = make_compressor(CompressionSpec("onebit", bucket_size=64))
    out = comp.roundtrip(x, rng)
    assert out.shape == x.shape


def test_onebit_with_error_feedback_converges_on_quadratic():
    """EF makes sign-SGD track the true gradient over time."""
    target = np.array([1.0, -0.2, 0.05, -3.0], dtype=np.float32)
    ef = ErrorFeedback(OneBitCompressor(
        CompressionSpec("onebit", bucket_size=4)))
    x = np.zeros(4, dtype=np.float32)
    rng = np.random.default_rng(3)
    for _ in range(400):
        grad = x - target
        x -= 0.05 * ef.roundtrip(grad, rng, key="w")
    np.testing.assert_allclose(x, target, atol=0.1)


def test_onebit_zero_bucket_safe():
    comp = make_compressor(CompressionSpec("onebit", bucket_size=32))
    x = np.zeros(64, dtype=np.float32)
    out = comp.roundtrip(x, np.random.default_rng(0))
    np.testing.assert_array_equal(out, x)


# -- DGC --------------------------------------------------------------------------

def _dgc(density=0.1, **kwargs):
    return DGCCompressor(CompressionSpec("dgc", density=density), **kwargs)


def test_dgc_transmits_k_values():
    rng = np.random.default_rng(4)
    x = rng.normal(size=100).astype(np.float32)
    comp = _dgc(density=0.1)
    compressed = comp.compress(x, rng, key="a")
    assert compressed.payload["indices"].size == 10


def test_dgc_momentum_correction_accumulates():
    """Coordinates below the threshold gather momentum until sent; all
    coordinates are eventually transmitted."""
    grad = np.array([1.0, 0.02, 0.02, 0.02], dtype=np.float32)
    comp = _dgc(density=0.25)   # k=1
    rng = np.random.default_rng(5)
    transmitted = np.zeros_like(grad)
    for _ in range(120):
        transmitted += comp.roundtrip(grad, rng, key="w")
    assert np.all(transmitted != 0)
    # momentum correction amplifies: total sent mass exceeds plain sums
    assert transmitted[0] > 100 * grad[0]


def test_dgc_masking_resets_transmitted_coordinates():
    rng = np.random.default_rng(6)
    x = np.array([5.0, 0.1], dtype=np.float32)
    comp = _dgc(density=0.5)  # k=1 -> always the big one
    comp.roundtrip(x, rng, key="m")
    assert comp._velocity["m"][0] == 0.0
    assert comp._momentum_buf["m"][0] == 0.0
    assert comp._velocity["m"][1] != 0.0


def test_dgc_warmup_schedule_monotone():
    comp = _dgc(density=0.01, warmup_steps=10, initial_density=0.25)
    rng = np.random.default_rng(7)
    x = rng.normal(size=1000).astype(np.float32)
    densities = []
    for _ in range(12):
        densities.append(comp.current_density("k"))
        comp.compress(x, rng, key="k")
    assert densities[0] == pytest.approx(0.25)
    assert densities[-1] == pytest.approx(0.01)
    assert all(a >= b - 1e-9 for a, b in zip(densities, densities[1:]))


def test_dgc_keys_independent():
    rng = np.random.default_rng(8)
    comp = _dgc(density=0.2)
    a = rng.normal(size=50).astype(np.float32)
    comp.roundtrip(a, rng, key="a")
    assert "b" not in comp._velocity
    comp.roundtrip(a, rng, key="b")
    assert set(comp._velocity) == {"a", "b"}


def test_dgc_reset():
    comp = _dgc()
    comp.roundtrip(np.ones(10, dtype=np.float32),
                   np.random.default_rng(0), key="k")
    comp.reset()
    assert not comp._velocity and not comp._momentum_buf


def test_dgc_momentum_validation():
    with pytest.raises(ValueError):
        DGCCompressor(CompressionSpec("dgc", density=0.1), momentum=1.5)


def test_dgc_wire_matches_topk():
    dgc = CompressionSpec("dgc", density=0.05)
    topk = CompressionSpec("topk", density=0.05)
    assert dgc.wire_bytes(10_000) == topk.wire_bytes(10_000)


def test_dgc_trains_through_engine():
    """DGC slots into the DDP engine and converges — but only with a
    momentum-free optimizer: its *own* momentum correction stacks with
    optimizer momentum and diverges (the hyperparameter sensitivity the
    paper holds against sparsifiers, which our divergence check below
    also demonstrates)."""
    import dataclasses

    from repro.core import CGXConfig
    from repro.training import DataParallelTrainer, get_recipe, make_task

    config = CGXConfig(compression=CompressionSpec("dgc", density=0.05))
    recipe = dataclasses.replace(get_recipe("mlp"), momentum=0.0, lr=0.05)
    task = make_task("mlp", batch_size=recipe.batch_size)
    trainer = DataParallelTrainer(task, world_size=2, config=config,
                                  recipe=recipe, seed=4)
    result = trainer.train(steps=100, eval_every=100)
    assert result.final_metric > 0.9
    assert trainer.in_sync()


def test_dgc_diverges_with_stacked_momentum():
    """The untuned combination (DGC momentum + SGD momentum) blows up —
    reproducing why the paper rejects sparsifiers for Goal 2."""
    import numpy as np

    from repro.core import CGXConfig
    from repro.training import train_family

    config = CGXConfig(compression=CompressionSpec("dgc", density=0.05))
    result = train_family("mlp", world_size=2, config=config, steps=80,
                          eval_every=80, seed=4)
    assert not np.isfinite(result.final_loss) or result.final_metric < 0.5

"""ELA battery: rule table, clean certification, tampered logs trip
ELA002, pass selection and rendering.

The heavyweight end-to-end properties (convergence parity, respec
feasibility, byte-identical logs) are exercised directly against the
trainer in ``test_elastic.py``; here we certify the battery itself —
its sub-verifiers come back clean on the stock campaigns, and the pure
log audit behind ELA002 fails closed on a doctored record stream.
"""

import io

import pytest

from repro.analysis.elastic import (
    ELA_RULES,
    ELASTIC_CAMPAIGNS,
    LOSS_TOLERANCE,
    _finding,
    verify_drain_protocol,
)
from repro.analysis.findings import Finding
from repro.faults import FaultRecord, check_drain_protocol, make_campaign


def run_cli(argv):
    from repro.analysis.cli import main as analysis_main

    out = io.StringIO()
    code = analysis_main(argv, out=out)
    return code, out.getvalue()


# -- the rule table ----------------------------------------------------------

def test_ela_rule_table_is_complete():
    assert sorted(ELA_RULES) == [f"ELA00{i}" for i in range(1, 6)]
    assert ELASTIC_CAMPAIGNS == ("spot-churn", "autoscale-burst")
    assert 0 < LOSS_TOLERANCE <= 0.02


# -- clean campaigns certify clean -------------------------------------------

def test_stock_campaigns_pass_the_drain_protocol():
    assert verify_drain_protocol() == []


# -- ELA002 fails closed on tampered logs ------------------------------------

def _record(step, kind, **detail):
    return FaultRecord(step=step, kind=kind,
                       detail=tuple(sorted(detail.items())))


def test_tampered_log_missing_exit_trips_ela002():
    """Strip a warned rank's resolution from the log: audit flags it."""
    plan = make_campaign("spot-churn", 4)
    warned = next(e for e in plan.events if e.kind == "preempt_warning")
    records = [_record(warned.start, "preempt_warning", rank=warned.rank,
                       deadline=warned.deadline)]
    messages = check_drain_protocol(plan, records)
    assert any("neither drained out nor degraded" in m for m in messages)
    findings = [_finding("ELA002", "spot-churn", m) for m in messages]
    assert {f.rule for f in findings} == {"ELA002"}


def test_tampered_log_late_exit_trips_ela002():
    """A forged exit stamped at the deadline is sending past reclaim."""
    plan = make_campaign("spot-churn", 4)
    warned = next(e for e in plan.events if e.kind == "preempt_warning")
    records = [
        _record(warned.start, "preempt_warning", rank=warned.rank,
                deadline=warned.deadline),
        _record(warned.deadline, "spot_exit", rank=warned.rank,
                deadline=warned.deadline),
    ]
    messages = check_drain_protocol(plan, records)
    assert any("kept sending after the provider reclaimed" in m
               for m in messages)


# -- pass selection ----------------------------------------------------------

def test_elastic_flag_selects_only_the_ela_battery():
    from repro.analysis.cli import ALL_PASSES, build_parser, select_passes

    args = build_parser().parse_args(["--elastic"])
    assert select_passes(args) == ("elastic",)
    args = build_parser().parse_args(["--elastic", "--sched"])
    assert select_passes(args) == ("sched", "elastic")
    assert ALL_PASSES[-1] == "elastic"


def test_elastic_conflicts_with_schedule_only():
    with pytest.raises(SystemExit):
        from repro.analysis.cli import build_parser, select_passes

        select_passes(build_parser().parse_args(
            ["--schedule-only", "--elastic"]))


def test_elastic_battery_findings_render_with_campaign(monkeypatch):
    import repro.analysis.elastic as elastic_mod

    planted = [_finding("ELA003", "spot-churn", "synthetic drift")]
    monkeypatch.setattr(elastic_mod, "verify_elastic", lambda: planted)
    code, out = run_cli(["--elastic"])
    assert code == 1
    assert "elastic[spot-churn@world=4]: ELA003 synthetic drift" in out


def test_elastic_findings_fingerprint_by_campaign():
    a = _finding("ELA005", "spot-churn", "synthetic")
    b = _finding("ELA005", "autoscale-burst", "synthetic")
    assert isinstance(a, Finding)
    assert a.fingerprint != b.fingerprint
    assert a.render() == "elastic[spot-churn@world=4]: ELA005 synthetic"

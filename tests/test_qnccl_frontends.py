"""Tests for the QNCCL artifact configuration and the two frontends."""

import numpy as np
import pytest

from repro.core import (
    CGXSession,
    CommunicationEngine,
    EagerFrontend,
    GraphFrontend,
    LayerInfo,
    qnccl_config,
)
from repro.core.qnccl import QNCCL_KERNEL_OVERHEAD_FACTOR, QNCCL_PLAN_MODE
from repro.nn import build_model


def test_qnccl_config_shape():
    config = qnccl_config()
    assert config.scheme == "ring"
    assert config.backend == "nccl"
    assert config.filtered_keywords == ()
    assert config.compression.method == "qsgd"
    assert QNCCL_PLAN_MODE == "fused"
    assert QNCCL_KERNEL_OVERHEAD_FACTOR > 1.0


def test_qnccl_cannot_filter_layers():
    """Transport-level integration has no layer names: norm/bias tensors
    get quantized like everything else."""
    engine = CommunicationEngine(qnccl_config())
    layers = [LayerInfo("fc.weight", 100_000), LayerInfo("bn.weight", 64)]
    plan = engine.plan(layers, mode=QNCCL_PLAN_MODE)
    assert all(p.spec.method == "qsgd" for p in plan)
    member_names = {l.name for p in plan for l in p.layers}
    assert "bn.weight" in member_names


def test_qnccl_buckets_mix_layers_hurting_small_tensors():
    """Quantizing a fused blob shares bucket scales across layers: a tiny
    norm tensor next to a large-magnitude layer sees inflated error
    compared to CGX's layer-wise compression."""
    rng = np.random.default_rng(0)
    big = rng.normal(scale=5.0, size=4096).astype(np.float32)
    small = rng.normal(scale=0.05, size=64).astype(np.float32)

    from repro.compression import CompressionSpec, make_compressor

    comp = make_compressor(CompressionSpec("qsgd", bits=4, bucket_size=128))
    # CGX: small tensor quantized alone
    alone = comp.roundtrip(small, np.random.default_rng(1))
    err_alone = np.linalg.norm(alone - small)
    # QNCCL: small tensor rides in a blob whose bucket ends overlap big
    blob = np.concatenate([big[:96], small])  # shares a bucket with `big`
    blob_restored = comp.roundtrip(blob, np.random.default_rng(1))
    err_blob = np.linalg.norm(blob_restored[96:] - small)
    assert err_blob > 2 * err_alone


# -- frontends ---------------------------------------------------------------

def worker_grads(world=2, seed=0):
    model = build_model("mlp", seed=seed)
    out = []
    for w in range(world):
        rng = np.random.default_rng(seed + w)
        out.append({
            name: rng.normal(size=p.data.shape).astype(np.float32)
            for name, p in model.named_parameters()
        })
    return out


def test_eager_frontend_reduces():
    session = CGXSession()
    frontend = EagerFrontend(session)
    grads = worker_grads()
    reduced, report = frontend.reduce(grads)
    assert report.packages > 0
    assert set(reduced[0]) == set(grads[0])


def test_graph_frontend_requires_capture():
    session = CGXSession()
    frontend = GraphFrontend(session)
    with pytest.raises(RuntimeError):
        frontend.reduce(worker_grads())


def test_graph_frontend_matches_eager_results():
    grads = worker_grads()
    eager = EagerFrontend(CGXSession(), seed=9)
    graph = GraphFrontend(CGXSession(), model=build_model("mlp", seed=0),
                          seed=9)
    reduced_e, _ = eager.reduce(grads)
    reduced_g, _ = graph.reduce(grads)
    for name in reduced_e[0]:
        np.testing.assert_array_equal(reduced_e[0][name], reduced_g[0][name])


def test_graph_frontend_rejects_layout_change():
    frontend = GraphFrontend(CGXSession(), model=build_model("mlp", seed=0))
    grads = worker_grads()
    for g in grads:
        g["new.layer"] = np.zeros(4, dtype=np.float32)
    with pytest.raises(ValueError):
        frontend.reduce(grads)


def test_graph_frontend_capture_from_layout():
    frontend = GraphFrontend(CGXSession())
    frontend.capture([("a.weight", 100), ("a.bias", 10)])
    grads = [{"a.weight": np.ones(100, dtype=np.float32),
              "a.bias": np.ones(10, dtype=np.float32)}] * 2
    reduced, _ = frontend.reduce(grads)
    assert set(reduced[0]) == {"a.weight", "a.bias"}

"""End-to-end integration tests crossing subsystem boundaries."""

import numpy as np

from repro.baselines import PowerSGDReducer
from repro.core import (
    AdaptiveController,
    CGXConfig,
    CGXDistributedDataParallel,
    CGXSession,
)
from repro.nn import Adam, build_model
from repro.nn.data import MarkovText
from repro.nn.loss import sequence_cross_entropy
from repro.training import DataParallelTrainer, get_recipe, make_task


def test_session_to_ddp_training_pipeline():
    """The full Listing-1 user journey: configure a session from the
    model layout, exclude sensitive layers, then train data-parallel."""
    model_kwargs = dict(vocab_size=32, max_len=16, dim=16, depth=1,
                        num_heads=2)
    probe = build_model("transformer_xl", seed=0, **model_kwargs)
    session = CGXSession()
    session.register_model([(n, p.numel)
                            for n, p in probe.named_parameters()])
    session.exclude_layer("pos")        # user-chosen extra exclusion
    session.set_quantization_bits(4, bucket_size=128)

    replicas = [build_model("transformer_xl", seed=0, **model_kwargs)
                for _ in range(2)]
    ddp = CGXDistributedDataParallel(replicas, session.config)
    opts = [Adam(r.parameters(), lr=2e-3) for r in replicas]
    data = MarkovText(vocab_size=32, seq_len=16)
    rng = np.random.default_rng(0)
    losses = []
    for _ in range(30):
        for r in replicas:
            r.zero_grad()
            x, y = data.sample(16, rng)
            loss, grad = sequence_cross_entropy(r(x), y)
            r.backward(grad)
        ddp.synchronize()
        for o in opts:
            o.step()
        losses.append(loss)
    assert ddp.check_in_sync()
    assert losses[-1] < losses[0]  # learning happened through compression
    # the user exclusion is honoured in the plan
    from repro.core import LayerInfo

    plan = ddp.engine.plan([LayerInfo(n, p.numel)
                            for n, p in replicas[0].named_parameters()])
    filtered = next(p for p in plan if p.name == "filtered")
    assert any("pos" in l.name for l in filtered.layers)


def test_multinode_hierarchical_training_converges():
    """16 simulated workers over 4 'nodes' with hierarchical reduction."""
    config = CGXConfig.cgx_default()
    config.scheme = "hier"
    task = make_task("mlp", batch_size=8)
    trainer = DataParallelTrainer(task, world_size=8, config=config,
                                  recipe=get_recipe("mlp"))
    trainer.ddp.engine.node_of = [0, 0, 1, 1, 2, 2, 3, 3]
    result = trainer.train(steps=40, eval_every=40)
    assert trainer.in_sync()
    assert result.final_metric > 0.85


def test_adaptive_training_changes_bits_and_keeps_accuracy():
    config = CGXConfig.cgx_default()
    controller = AdaptiveController(config, method="kmeans", period=10,
                                    alpha=2.5)
    task = make_task("mlp", batch_size=16)
    trainer = DataParallelTrainer(task, world_size=2, config=config,
                                  recipe=get_recipe("mlp"),
                                  adaptive=controller)
    result = trainer.train(steps=40, eval_every=40)
    assert controller.reassign_count >= 3
    assert config.per_layer  # per-layer bits were written
    assert result.final_metric > 0.85
    assert trainer.in_sync()


def test_powersgd_end_to_end_training():
    """PowerSGD reducer replacing the CGX engine keeps replicas in sync
    and converges on the MLP task."""
    from repro.nn import SGD
    from repro.nn.data import SyntheticVectors
    from repro.nn.loss import softmax_cross_entropy

    replicas = [build_model("mlp", seed=4) for _ in range(2)]
    reducer = PowerSGDReducer(rank=4)
    opts = [SGD(r.parameters(), lr=0.1, momentum=0.9) for r in replicas]
    data = SyntheticVectors(seed=0)
    rng = np.random.default_rng(5)
    for _ in range(60):
        per_worker = []
        for r in replicas:
            r.zero_grad()
            x, y = data.sample(32, rng)
            _, grad = softmax_cross_entropy(r(x), y)
            r.backward(grad)
            per_worker.append({n: p.grad
                               for n, p in r.named_parameters()})
        reduced = reducer.reduce(per_worker)
        for r, grads in zip(replicas, reduced):
            for n, p in r.named_parameters():
                p.grad = grads[n]
        for o in opts:
            o.step()
    xe, ye = data.eval_set(256)
    acc = float((replicas[0](xe).argmax(-1) == ye).mean())
    assert acc > 0.9
    for (_, pa), (_, pb) in zip(replicas[0].named_parameters(),
                                replicas[1].named_parameters()):
        np.testing.assert_array_equal(pa.data, pb.data)


def test_scheme_accuracy_equivalence_under_compression():
    """All reduction schemes recover the task; SRA/allgather at least as
    well as ring (error ordering carries to end metrics statistically,
    but all must pass the accuracy bar)."""
    metrics = {}
    for scheme in ["sra", "ring", "allgather"]:
        config = CGXConfig.cgx_default()
        config.scheme = scheme
        task = make_task("mlp", batch_size=16)
        trainer = DataParallelTrainer(task, world_size=2, config=config,
                                      recipe=get_recipe("mlp"), seed=3)
        metrics[scheme] = trainer.train(steps=60,
                                        eval_every=60).final_metric
    assert all(m > 0.9 for m in metrics.values()), metrics

"""Tests for TopK sparsification and error feedback."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compression import (
    CompressionSpec,
    ErrorFeedback,
    TopKCompressor,
    make_compressor,
)


def _spec(density=0.1):
    return CompressionSpec("topk", density=density)


def test_keeps_exactly_k_largest():
    x = np.array([0.1, -5.0, 0.2, 3.0, -0.05, 1.0, 0.0, -2.0],
                 dtype=np.float32)
    comp = TopKCompressor(_spec(density=0.25))  # k = 2
    out = comp.roundtrip(x, np.random.default_rng(0))
    nonzero = np.flatnonzero(out)
    assert set(nonzero) == {1, 3}
    assert out[1] == -5.0 and out[3] == 3.0


def test_density_one_is_identity():
    rng = np.random.default_rng(1)
    x = rng.normal(size=64).astype(np.float32)
    comp = TopKCompressor(_spec(density=1.0))
    np.testing.assert_array_equal(comp.roundtrip(x, rng), x)


def test_wire_bytes_accounting():
    spec = _spec(density=0.01)
    # k = 10 of 1000, 8 bytes each (int32 index + fp32 value)
    assert spec.wire_bytes(1000) == 10 * 8


def test_compression_preserves_shape():
    rng = np.random.default_rng(2)
    x = rng.normal(size=(16, 8)).astype(np.float32)
    comp = TopKCompressor(_spec(0.1))
    assert comp.roundtrip(x, rng).shape == (16, 8)


@given(n=st.integers(10, 500), density=st.floats(0.01, 0.9))
@settings(max_examples=40, deadline=None)
def test_topk_error_never_exceeds_input_norm(n, density):
    rng = np.random.default_rng(n)
    x = rng.normal(size=n).astype(np.float32)
    comp = TopKCompressor(CompressionSpec("topk", density=density))
    out = comp.roundtrip(x, np.random.default_rng(0))
    # kept values are exact; error is the norm of the dropped tail
    kept = np.flatnonzero(out)
    np.testing.assert_allclose(out[kept], x[kept])
    assert np.linalg.norm(out - x) <= np.linalg.norm(x) + 1e-6


def test_error_feedback_recovers_dropped_mass():
    """With EF, repeated compression of a constant gradient transmits the
    full mass over time: residual + transmitted == accumulated input."""
    grad = np.array([1.0, 0.01, 0.01, 0.01], dtype=np.float32)
    ef = ErrorFeedback(TopKCompressor(_spec(density=0.25)))  # k=1
    rng = np.random.default_rng(3)
    transmitted = np.zeros_like(grad)
    steps = 200
    for _ in range(steps):
        transmitted += ef.roundtrip(grad, rng, key="w")
    # small coordinates are not starved: each got through at least once
    assert np.all(transmitted > 0)
    # conservation: accumulated input == transmitted + outstanding residual
    residual = ef._residuals["w"]
    np.testing.assert_allclose(transmitted + residual, steps * grad,
                               rtol=1e-4)


def test_error_feedback_invariant_per_step():
    """input + residual_before == transmitted + residual_after."""
    rng = np.random.default_rng(4)
    ef = ErrorFeedback(TopKCompressor(_spec(density=0.2)))
    grad = rng.normal(size=50).astype(np.float32)
    total_in = np.zeros_like(grad)
    total_out = np.zeros_like(grad)
    for step in range(20):
        total_in += grad
        total_out += ef.roundtrip(grad, rng, key="k")
    residual = total_in - total_out
    assert np.linalg.norm(residual) == pytest.approx(
        ef.residual_norm("k"), rel=1e-4
    )


def test_error_feedback_keys_are_independent():
    rng = np.random.default_rng(5)
    ef = ErrorFeedback(TopKCompressor(_spec(density=0.2)))
    a = rng.normal(size=20).astype(np.float32)
    b = rng.normal(size=20).astype(np.float32)
    ef.roundtrip(a, rng, key="a")
    ef.roundtrip(b, rng, key="b")
    assert ef.residual_norm("a") != pytest.approx(ef.residual_norm("b"))
    ef.reset()
    assert ef.residual_norm("a") == 0.0


def test_without_error_feedback_mass_is_lost():
    """Contrast test: same workload as the EF test but without feedback
    permanently drops the small coordinates — the reason the paper always
    pairs TopK with error correction."""
    grad = np.array([1.0, 0.01, 0.01, 0.01], dtype=np.float32)
    comp = TopKCompressor(_spec(density=0.25))
    rng = np.random.default_rng(6)
    transmitted = np.zeros_like(grad)
    for _ in range(50):
        transmitted += comp.roundtrip(grad, rng)
    assert transmitted[1] == 0.0  # never transmitted


def test_density_validation():
    with pytest.raises(ValueError):
        CompressionSpec("topk", density=0.0)
    with pytest.raises(ValueError):
        CompressionSpec("topk", density=1.5)


def test_error_feedback_spec_passthrough():
    ef = ErrorFeedback(make_compressor(_spec(0.3)))
    assert ef.spec.density == 0.3

"""Property tests for the adaptive solvers (hypothesis).

The plan certifier (``repro.analysis.plans``) proves the budget and
structural invariants over a *fixed* seeded battery; these properties
hammer the same invariants over hypothesis-generated instances spanning
sizes 1..10^7, zero-norm layers, and single-layer models — the corners
a fixed battery can only sample.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ASSIGNERS, LayerStat, certify_assignment
from repro.core.adaptive import DEFAULT_BITWIDTHS


@st.composite
def layer_stats(draw):
    """A random instance: 1..12 layers, sizes 1..10^7, norms >= 0.

    Zero norms (dead layers) are generated explicitly — they are the
    degenerate corner where greedy error/byte trade-offs divide by zero
    if implemented carelessly.
    """
    count = draw(st.integers(min_value=1, max_value=12))
    stats = []
    for i in range(count):
        exponent = draw(st.floats(min_value=0.0, max_value=7.0))
        numel = max(1, int(10 ** exponent))
        norm = draw(st.one_of(
            st.just(0.0),
            st.floats(min_value=1e-6, max_value=1e3,
                      allow_nan=False, allow_infinity=False)))
        stats.append(LayerStat(f"layer{i}", numel, norm))
    return stats


ALPHAS = st.sampled_from((1.2, 1.5, 2.0, 3.0, 5.0))


@pytest.mark.parametrize("method", sorted(ASSIGNERS))
@given(stats=layer_stats(), alpha=ALPHAS)
@settings(max_examples=40, deadline=None)
def test_assigners_respect_exact_budget(method, stats, alpha):
    bits = ASSIGNERS[method](stats, alpha=alpha)
    assert certify_assignment(stats, bits, alpha)


@pytest.mark.parametrize("method", sorted(ASSIGNERS))
@given(stats=layer_stats(), alpha=ALPHAS)
@settings(max_examples=40, deadline=None)
def test_assigners_cover_layers_with_ladder_widths(method, stats, alpha):
    bits = ASSIGNERS[method](stats, alpha=alpha)
    assert set(bits) == {s.name for s in stats}
    assert set(bits.values()) <= set(DEFAULT_BITWIDTHS)


@pytest.mark.parametrize("method", sorted(ASSIGNERS))
@given(alpha=ALPHAS,
       numel=st.integers(min_value=1, max_value=10_000_000),
       norm=st.floats(min_value=0.0, max_value=1e3,
                      allow_nan=False, allow_infinity=False))
@settings(max_examples=40, deadline=None)
def test_single_layer_instances(method, alpha, numel, norm):
    stats = [LayerStat("only", numel, norm)]
    bits = ASSIGNERS[method](stats, alpha=alpha)
    assert set(bits) == {"only"}
    assert bits["only"] in DEFAULT_BITWIDTHS
    assert certify_assignment(stats, bits, alpha)

"""Tests for mixed-precision emulation."""

import numpy as np

from repro.nn.amp import AmpLevel, apply_grad_precision, fp16_roundtrip


def test_fp16_roundtrip_loses_precision():
    x = np.array([1.0 + 1e-6], dtype=np.float32)
    out = fp16_roundtrip(x)
    assert out.dtype == np.float32
    assert out[0] != x[0]
    assert abs(out[0] - x[0]) < 1e-3


def test_fp16_roundtrip_preserves_representable():
    x = np.array([0.5, 1.0, 2.0, -4.0], dtype=np.float32)
    np.testing.assert_array_equal(fp16_roundtrip(x), x)


def test_fp16_overflow_to_inf():
    x = np.array([1e6], dtype=np.float32)  # above fp16 max (~65504)
    assert np.isinf(fp16_roundtrip(x)[0])


def test_grad_precision_levels():
    rng = np.random.default_rng(0)
    grad = rng.normal(size=100).astype(np.float32) * (1 + 1e-6)
    np.testing.assert_array_equal(
        apply_grad_precision(grad, AmpLevel.O0), grad)
    np.testing.assert_array_equal(
        apply_grad_precision(grad, AmpLevel.O1), grad)
    o2 = apply_grad_precision(grad, AmpLevel.O2)
    assert not np.array_equal(o2, grad)
    np.testing.assert_allclose(o2, grad, rtol=1e-3)

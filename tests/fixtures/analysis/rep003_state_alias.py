"""Fixture: triggers exactly REP003 (aliased error-feedback state)."""


class Feedback:
    def __init__(self):
        self._residuals = {}

    def update(self, key, grad):
        # stores the caller's array; their next in-place op corrupts it
        self._residuals[key] = grad

"""Fixture: triggers exactly REP005 (bare except)."""


def safe_read(path):
    try:
        with open(path) as handle:
            return handle.read()
    except:
        return None

"""Fixture: triggers exactly REP004 (mutable default argument)."""


def record(value, history=[]):
    history.append(value)
    return history

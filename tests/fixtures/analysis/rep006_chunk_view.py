"""Fixture: triggers exactly REP006 (in-place op on a split_chunks view)."""

from repro.collectives import split_chunks


def accumulate(buffer, update):
    chunks = split_chunks(buffer, 4)
    chunks[0] += update  # mutates the caller's buffer through the view
    return chunks

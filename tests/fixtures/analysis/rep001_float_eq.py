"""Fixture: triggers exactly REP001 (float equality)."""


def converged(loss):
    return loss == 0.0

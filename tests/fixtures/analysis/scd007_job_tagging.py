"""SCD007 fixture: scheduling calls with and without job tags.

The four untagged calls below must each be flagged; the tagged calls,
the exempt bandwidth probe and the unqualified name must stay silent.
"""


class LeakyRunner:
    def leaky_transfer(self, network, src, dst, nbytes, ready):
        return network.transfer(src, dst, nbytes, ready)  # flagged

    def leaky_kernel(self, pool, gpu, ready, duration):
        return pool.run_kernel(gpu, ready, duration)  # flagged

    def leaky_path(self, pool, names, ready, duration):
        return pool.schedule_path(names, ready, duration)  # flagged

    def tagged_kwarg(self, network, src, dst, nbytes, ready, state):
        return network.transfer(src, dst, nbytes, ready,
                                job=state.spec.job_id)  # tagged: silent

    def tagged_positional(self, pool, ready, duration, job):
        return pool.schedule(ready, duration, job)  # tagged: silent

    def tagged_attribute(self, pool, gpu, ready, duration, state):
        return pool.run_kernel(gpu, ready, duration,
                               state.job_id)  # tagged: silent


def leaky_collective(net, ranks, numel, spec):
    return net.time_allreduce(ranks, numel, spec)  # flagged


def measure_p2p_bandwidth(network, nbytes):
    # probes run on a scratch network no job shares: exempt
    return network.transfer(0, 1, nbytes, 0.0)


def unqualified_helper(transfer):
    # a bare name is not a scheduling method on a shared object
    return transfer(0, 1, 8, 0.0)

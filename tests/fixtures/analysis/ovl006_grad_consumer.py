"""Fixture: triggers exactly one OVL006 (barrier-bypassing .grad read)."""

from repro.nn.optim import grad_consumer


def sneaky_update(params, lr):
    # flagged: reads .grad with no barrier call and no marker
    for param in params:
        param.data -= lr * param.grad


@grad_consumer
def sanctioned_update(params, lr):
    for param in params:
        param.data -= lr * param.grad


def barriered_update(ddp, params, lr, step):
    ddp.mark_consumed(step)
    for param in params:
        param.data -= lr * param.grad


def zero_grad(params):
    for param in params:
        param.grad = None


def writes_only(params, value):
    # stores into .grad (producer side): not a consumer read
    for param in params:
        param.grad = value

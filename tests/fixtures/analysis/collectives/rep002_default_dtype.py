"""Fixture: triggers exactly REP002 (default-dtype alloc in a hot path).

Lives under a ``collectives/`` directory so the hot-path scoping applies.
"""

import numpy as np


def make_accumulator(numel):
    return np.zeros(numel)

"""Overlapped engine mode: deterministic bucket assembly, canonical
event logs, bit-identity against sequential mode, the injected-delay
trainer campaign and the DDP completion barrier."""

import numpy as np
import pytest

from repro.cluster import Network, get_backend, get_machine
from repro.collectives import TimedBucket, time_overlapped_step
from repro.collectives.trace import capture
from repro.compression import CompressionSpec
from repro.compression.topk import ErrorFeedback, TopKCompressor
from repro.core import CGXConfig, CommunicationEngine, LayerInfo
from repro.core.ddp import CGXDistributedDataParallel
from repro.core.overlap import (
    OverlapBucket,
    OverlapDelays,
    OverlapReport,
    assemble_buckets,
    layer_ready_times,
    schedule_buckets,
)
from repro.nn.layers import Linear
from repro.nn.module import Sequential
from repro.training.tasks import make_task
from repro.training.trainer import DataParallelTrainer

L = LayerInfo


def per_layer_config(spec=None, fusion_bytes=768):
    """Every layer its own package: the bit-identity configuration.

    With the keyword filter off and the size threshold below every
    layer, sequential mode never builds the cross-layer "filtered"
    fusion package, so both modes sum each layer's chunks in the same
    order.
    """
    return CGXConfig(
        compression=spec or CompressionSpec("topk", density=0.25,
                                            error_feedback=True),
        filtered_keywords=(),
        min_compress_numel=16,
        fusion_bytes=fusion_bytes,
    )


def grads_for(layers, world, seed):
    rng = np.random.default_rng(seed)
    return [
        {name: rng.normal(size=numel).astype(np.float32)
         for name, numel in layers}
        for _ in range(world)
    ]


LAYERS = [(f"layer{i}", 96) for i in range(6)] + [("tail", 24)]
NAMES = [name for name, _ in LAYERS]


# -- bucket assembly ----------------------------------------------------------

def bucket_shape(buckets):
    return [(b.name, tuple(b.layer_names), b.first_needed, b.min_index,
             b.dense_bytes, b.wire_bytes) for b in buckets]


def example_packages(config):
    engine = CommunicationEngine(config)
    layers = [L(name, numel, (numel,)) for name, numel in reversed(LAYERS)]
    # per-layer packages in emission (reverse forward) order
    return [engine.plan([layer], mode="cgx")[0] for layer in layers]


def test_assemble_buckets_deterministic():
    config = per_layer_config()
    forward_pos = {name: i for i, name in enumerate(NAMES)}
    runs = [
        bucket_shape(assemble_buckets(example_packages(config), forward_pos,
                                      config.fusion_bytes))
        for _ in range(2)
    ]
    assert runs[0] == runs[1]


def test_assemble_buckets_partitions_layers():
    config = per_layer_config()
    forward_pos = {name: i for i, name in enumerate(NAMES)}
    buckets = assemble_buckets(example_packages(config), forward_pos,
                               config.fusion_bytes)
    covered = [name for b in buckets for name in b.layer_names]
    assert sorted(covered) == sorted(NAMES)
    # a fused bucket never crosses a spec boundary
    for bucket in buckets:
        specs = {pkg.spec for pkg in bucket.packages}
        assert len(specs) == 1
    # first_needed is the smallest member forward position
    for bucket in buckets:
        assert bucket.first_needed == min(forward_pos[name]
                                          for name in bucket.layer_names)


def one_layer_bucket(name, layer, first_needed, min_index):
    from repro.core.engine import Package

    pkg = Package(layer, (L(layer, 4, (4,)),), CompressionSpec("none"))
    return OverlapBucket(name=name, packages=[pkg],
                         first_needed=first_needed, min_index=min_index,
                         dense_bytes=16, wire_bytes=16)


def test_schedule_buckets_first_needed_first_sent():
    b0 = one_layer_bucket("b0", "x", 5, 0)
    b1 = one_layer_bucket("b1", "y", 1, 1)
    b2 = one_layer_bucket("b2", "z", 3, 2)
    # all three sealed at t=0: strict (first_needed, min_index) order
    order = schedule_buckets([b0, b1, b2],
                             {"x": 0.0, "y": 0.0, "z": 0.0},
                             lambda b: 1.0)
    assert [b.name for b in order] == ["b1", "b2", "b0"]
    # single channel: launches never overlap a transfer in flight
    for prev, nxt in zip(order, order[1:]):
        assert nxt.launch_t >= prev.landed_t
    # late seal: b1 seals only after b0's transfer started
    b0b = one_layer_bucket("b0", "x", 5, 0)
    b1b = one_layer_bucket("b1", "y", 1, 1)
    order = schedule_buckets([b0b, b1b], {"x": 0.0, "y": 0.5},
                             lambda b: 1.0)
    assert [b.name for b in order] == ["b0", "b1"]
    assert b1b.launch_t == pytest.approx(b0b.landed_t)


def test_layer_ready_times_cumulative():
    delays = OverlapDelays.uniform(["a", "b", "c"], compute=0.25)
    ready = layer_ready_times(["c", "b", "a"], delays)
    assert ready == {"c": pytest.approx(0.25), "b": pytest.approx(0.5),
                     "a": pytest.approx(0.75)}


# -- canonical event logs -----------------------------------------------------

def overlapped_run(seed):
    config = per_layer_config(
        CompressionSpec("qsgd", bits=4, bucket_size=32, error_feedback=True))
    engine = CommunicationEngine(config)
    rng = np.random.default_rng(seed)
    delays = OverlapDelays.uniform(NAMES, compute=1e-3, comm_latency=2e-3,
                                   comm_per_byte=0.0)
    with capture() as trace:
        for step in range(3):
            per_worker = grads_for(LAYERS, 3, 100 + step)
            _, report = engine.reduce_overlapped(
                per_worker, rng, ready_order=list(reversed(NAMES)),
                step=step, delays=delays)
    log = [(e.kind, e.step, round(e.t, 12), e.layer, e.bucket,
            e.first_needed) for e in trace.overlap_events]
    return log, report


def test_same_seed_event_logs_byte_identical():
    log_a, _ = overlapped_run(11)
    log_b, _ = overlapped_run(11)
    assert repr(log_a).encode() == repr(log_b).encode()


def test_event_log_interleaves_compute_and_comm():
    log, report = overlapped_run(11)
    kinds = {kind for kind, *_ in log}
    assert kinds == {"grad_ready", "reduce_enqueued", "reduce_landed"}
    # at least one bucket lands before the last gradient is emitted —
    # the overlap the mode exists to buy
    last_ready = max(t for kind, _, t, *_ in log if kind == "grad_ready")
    first_landed = min(t for kind, _, t, *_ in log
                       if kind == "reduce_landed")
    assert first_landed < last_ready
    assert isinstance(report, OverlapReport)
    assert report.overlapped_time < report.sequential_time


# -- bit-identity against sequential mode -------------------------------------

@pytest.mark.parametrize("spec", [
    CompressionSpec("topk", density=0.25, error_feedback=True),
    CompressionSpec("none"),
])
def test_overlapped_bit_identical_to_sequential(spec):
    """Same grads, same state: overlapped == sequential, bit for bit.

    Buckets are transmission groups only — each inner package keeps its
    own compressor and chunk partition — so deterministic compressors
    see the exact same arithmetic in both modes.
    """
    config_a = per_layer_config(spec)
    config_b = per_layer_config(spec)
    seq = CommunicationEngine(config_a)
    ovl = CommunicationEngine(config_b)
    for step in range(3):
        per_worker = grads_for(LAYERS, 3, 40 + step)
        reduced_seq, _ = seq.reduce(
            [dict(g) for g in per_worker], np.random.default_rng(step))
        reduced_ovl, _ = ovl.reduce_overlapped(
            [dict(g) for g in per_worker], np.random.default_rng(step),
            ready_order=list(reversed(NAMES)), step=step)
        for worker in range(3):
            for name in NAMES:
                np.testing.assert_array_equal(
                    reduced_seq[worker][name], reduced_ovl[worker][name],
                    err_msg=f"step {step}, worker {worker}, {name}")


def test_error_feedback_residual_survives_quorum_demotion():
    """Regression: a quorum change repartitions chunks; the stale
    residual (stored at the old chunk shape) must reset, not crash."""
    config = per_layer_config(
        CompressionSpec("topk", density=0.25, error_feedback=True))
    engine = CommunicationEngine(config)
    rng = np.random.default_rng(0)
    per_worker = grads_for(LAYERS, 3, 7)
    engine.reduce([dict(g) for g in per_worker], rng)
    # world 3 -> quorum 2: sra chunks go 96/3=32 to 96/2=48 elements
    reduced, _ = engine.reduce([dict(g) for g in per_worker], rng,
                               participants=[0, 1], average_over=2)
    assert all(np.isfinite(reduced[0][name]).all() for name in NAMES)
    # and the same path through overlapped mode
    reduced, _ = engine.reduce_overlapped(
        [dict(g) for g in per_worker], rng,
        ready_order=list(reversed(NAMES)), step=2)
    assert all(np.isfinite(reduced[0][name]).all() for name in NAMES)


def test_error_feedback_discards_misaligned_residual():
    ef = ErrorFeedback(TopKCompressor(
        CompressionSpec("topk", density=0.5, error_feedback=True)))
    rng = np.random.default_rng(0)
    ef.compress(np.ones(32, dtype=np.float32), rng, key="k")
    # same key, new chunk shape: must not broadcast-crash
    out = ef.compress(np.ones(48, dtype=np.float32), rng, key="k")
    assert np.isfinite(ef.compressor.decompress(out)).all()
    # and the residual was rebuilt at the new shape
    assert ef._residuals["k"].shape == (48,)


# -- module grad-ready hooks --------------------------------------------------

def test_grad_ready_hooks_report_backward_order():
    rng = np.random.default_rng(0)
    model = Sequential(Linear(8, 8, rng=rng), Linear(8, 8, rng=rng),
                       Linear(8, 4, rng=rng))
    emitted = []
    model.register_grad_ready_hook(emitted.append)
    out = model(np.ones((2, 8), dtype=np.float32))
    model.backward(np.ones_like(out))
    # stages report deepest-first, each with its dotted parameter names
    assert [sorted(batch) for batch in emitted] == [
        ["2.bias", "2.weight"], ["1.bias", "1.weight"],
        ["0.bias", "0.weight"]]
    model.clear_grad_ready_hooks()
    emitted.clear()
    model.backward(np.ones_like(out))
    assert emitted == []


# -- the DDP completion barrier -----------------------------------------------

def mlp_ddp(world=2, overlap_config=None):
    task = make_task("mlp", batch_size=8)
    replicas = [task.build_model(0) for _ in range(world)]
    return task, CGXDistributedDataParallel(
        replicas, config=overlap_config or per_layer_config(), seed=0)


def run_backward(task, ddp, seed=0):
    rng = np.random.default_rng(seed)
    batch = task.sample_batch(rng)
    for replica in ddp.replicas:
        replica.zero_grad()
        logits = replica(batch[0])
        _, grad = task.loss_and_grad(logits, batch)
        replica.backward(grad)


def test_mark_consumed_before_sync_raises():
    task, ddp = mlp_ddp()
    run_backward(task, ddp)
    with pytest.raises(RuntimeError, match="before .* reduction landed"):
        ddp.mark_consumed(step=1)


def test_mark_consumed_wrong_step_raises():
    task, ddp = mlp_ddp()
    run_backward(task, ddp)
    ddp.synchronize_overlapped(step=1)
    with pytest.raises(RuntimeError, match="landed step 1"):
        ddp.mark_consumed(step=2)
    ddp.mark_consumed(step=1)  # the matching step passes


def test_synchronize_overlapped_requires_cgx_mode():
    task = make_task("mlp", batch_size=8)
    replicas = [task.build_model(0) for _ in range(2)]
    ddp = CGXDistributedDataParallel(replicas, config=per_layer_config(),
                                     mode="fused", seed=0)
    run_backward(task, ddp)
    with pytest.raises(ValueError, match="requires cgx planning"):
        ddp.synchronize_overlapped(step=1)


# -- the injected-delay trainer campaign --------------------------------------

def test_trainer_overlap_hides_injected_delays_and_matches_sequential():
    """FSDP-style check: under balanced injected delays the overlapped
    step beats the synchronize-at-the-end baseline by >= 1.25x, while
    the trained weights stay bit-identical to sequential mode."""
    steps = 3

    def train(overlap):
        task = make_task("mlp", batch_size=8)
        config = per_layer_config(fusion_bytes=2048)
        names = [name for name, _ in task.build_model(0).named_parameters()]
        delays = OverlapDelays.uniform(names, compute=1e-3,
                                       comm_latency=2e-3, comm_per_byte=0.0)
        trainer = DataParallelTrainer(task, world_size=3, config=config,
                                      seed=0, overlap=overlap,
                                      overlap_delays=delays)
        reports = []
        for _ in range(steps):
            trainer.train_step()
            reports.append(trainer.ddp.last_report)
        weights = {name: param.data.copy()
                   for name, param in trainer.replicas[0].named_parameters()}
        return weights, reports

    seq_weights, _ = train(overlap=False)
    ovl_weights, reports = train(overlap=True)
    for name, value in seq_weights.items():
        np.testing.assert_array_equal(value, ovl_weights[name],
                                      err_msg=name)
    for report in reports:
        assert isinstance(report, OverlapReport)
        assert len(report.buckets) >= 2
        assert report.overlapped_time <= 0.8 * report.sequential_time
        assert report.overlap_ratio > 1.25


# -- the Network-grounded timed path ------------------------------------------

def timed_network():
    machine = get_machine("rtx3090-8x")
    return Network(machine.topology(), get_backend("nccl"))


def test_time_overlapped_step_beats_sequential():
    spec = CompressionSpec("qsgd", bits=4, bucket_size=128)
    buckets = [
        TimedBucket(name=f"b{i}", numel=1 << 20, spec=spec,
                    ready=1e-3 * (i + 1), first_needed=3 - i, min_index=i)
        for i in range(4)
    ]
    timing = time_overlapped_step(timed_network(), list(range(8)), buckets,
                                  scheme="sra", compute_end=4e-3)
    assert timing.overlapped_end <= timing.sequential_end + 1e-12
    assert timing.overlap_ratio >= 1.0
    assert len(timing.intervals) == 4
    # single channel: intervals are disjoint in launch order
    ordered = sorted(timing.intervals, key=lambda iv: iv[1])
    for (_, _, end), (_, launch, _) in zip(ordered, ordered[1:]):
        assert launch >= end - 1e-12


def test_time_overlapped_step_empty():
    timing = time_overlapped_step(timed_network(), list(range(8)), [],
                                  scheme="sra", compute_end=5e-3)
    assert timing.overlapped_end == pytest.approx(5e-3)
    assert timing.sequential_end == pytest.approx(5e-3)
    assert timing.intervals == []

"""Tests for the collective-schedule verifier."""

import numpy as np
import pytest

from repro.analysis import (SchemeCase, default_cases,
                            expected_recompression_bound, trace_case,
                            verify_callable, verify_schedules, verify_trace)
from repro.collectives import ALGORITHMS
from repro.collectives.base import ReduceStats, check_buffers
from repro.collectives.trace import capture, emit_recv, emit_send


def test_every_registered_scheme_is_covered_by_default_cases():
    covered = {case.scheme for case in default_cases()}
    assert set(ALGORITHMS) <= covered
    assert "partial" in covered


def test_all_registered_schemes_verify_clean():
    findings = verify_schedules()
    assert findings == [], [f.render() for f in findings]


@pytest.mark.parametrize("case", default_cases(),
                         ids=lambda c: f"{c.scheme}-w{c.world}")
def test_trace_pairs_and_conserves_bytes(case):
    trace, stats = trace_case(case)
    assert len(trace.sends) == len(trace.recvs)
    assert trace.send_bytes() == stats.wire_bytes
    assert verify_trace(trace, stats, case) == []


def _asymmetric_allreduce(buffers, compressor, rng, key=""):
    """Toy broken scheme: rank 0 gathers but never sends results back.

    Every worker pushes its gradient to rank 0, and every worker then
    *waits* for a reply that is never transmitted — the classic
    asymmetric schedule that hangs a real collective.
    """
    numel = check_buffers(buffers)
    world = len(buffers)
    stats = ReduceStats("asym", world, numel)
    total = buffers[0].astype(np.float32).ravel().copy()
    for rank in range(1, world):
        wire = compressor.compress(buffers[rank].ravel(), rng,
                                   key=f"{key}/{rank}")
        stats.record_send(wire.nbytes)
        emit_send(rank, 0, wire.nbytes, step=0, tag=f"push/{rank}")
        total += compressor.decompress(wire)
        emit_recv(0, rank, wire.nbytes, step=0, tag=f"push/{rank}")
    # BUG: workers expect a broadcast that rank 0 never performs
    reply = compressor.compress(total, rng, key=f"{key}/reply")
    for rank in range(1, world):
        emit_recv(rank, 0, reply.nbytes, step=1, tag="reply")
    result = compressor.decompress(reply)
    shaped = result.reshape(buffers[0].shape)
    return [shaped.copy() for _ in range(world)], stats


def test_asymmetric_toy_scheme_is_rejected():
    findings = verify_callable(_asymmetric_allreduce, world=4, scheme="asym")
    rules = {f.rule for f in findings}
    assert "SCH002" in rules  # recv with no matching send -> deadlock
    assert all(f.source == "schedule" and f.scheme == "asym" for f in findings)


def test_orphan_send_is_rejected():
    def leaky(buffers, compressor, rng, key=""):
        outs, stats = ALGORITHMS["sra"](buffers, compressor, rng, key=key)
        emit_send(0, 1, 64, step=9, tag="extra")  # transmitted, never consumed
        stats.record_send(64)
        return outs, stats

    findings = verify_callable(leaky, world=3, scheme="leaky")
    assert {f.rule for f in findings} == {"SCH001"}


def test_wire_conservation_mismatch_is_flagged():
    case = SchemeCase("sra", 4)
    trace, stats = trace_case(case)
    stats.wire_bytes += 7  # accounting drifts from the actual schedule
    findings = verify_trace(trace, stats, case)
    assert [f.rule for f in findings] == ["SCH005"]


def test_recompression_bound_violation_is_flagged():
    case = SchemeCase("sra", 4)
    trace, stats = trace_case(case)
    stats.max_recompressions = 99
    findings = verify_trace(trace, stats, case)
    assert [f.rule for f in findings] == ["SCH006"]


def test_self_message_is_flagged():
    def selfie(buffers, compressor, rng, key=""):
        outs, stats = ALGORITHMS["sra"](buffers, compressor, rng, key=key)
        emit_send(1, 1, 8, step=9, tag="self")
        emit_recv(1, 1, 8, step=9, tag="self")
        stats.record_send(8)
        return outs, stats

    findings = verify_callable(selfie, world=3, scheme="selfie")
    assert {f.rule for f in findings} == {"SCH004"}


def test_recv_before_send_breaks_causality():
    case = SchemeCase("causal", 2)
    stats = ReduceStats("causal", 2, 1, wire_bytes=8)
    with capture() as trace:
        emit_recv(1, 0, 8, step=0, tag="t")  # consumed before transmission
        emit_send(0, 1, 8, step=0, tag="t")
    findings = verify_trace(trace, stats, case)
    assert [f.rule for f in findings] == ["SCH003"]


def test_expected_bounds_match_scheme_analysis():
    assert expected_recompression_bound("sra", 8) == 2
    assert expected_recompression_bound("allgather", 8) == 1
    assert expected_recompression_bound("ring", 8) == 8
    assert expected_recompression_bound("tree", 8) == 4
    assert expected_recompression_bound("hier", 8) == 5
    assert expected_recompression_bound("partial", 8) == 3


def test_tracing_is_inert_outside_capture():
    rng = np.random.default_rng(0)
    from repro.compression import CompressionSpec, make_compressor
    comp = make_compressor(CompressionSpec("qsgd", bits=4, bucket_size=32))
    bufs = [np.ones(17, dtype=np.float32) for _ in range(3)]
    with capture() as trace:
        ALGORITHMS["sra"](bufs, comp, rng, key="a")
    n_inside = len(trace.events)
    ALGORITHMS["sra"](bufs, comp, rng, key="b")  # no active trace
    assert len(trace.events) == n_inside
    assert n_inside > 0

"""Tests for the autonomous health stack: detector, monitor, supervisor."""

import numpy as np
import pytest

from repro.compression import CompressionSpec
from repro.core import CGXConfig
from repro.faults import (
    CheckpointStore,
    FaultPlan,
    HealthMonitor,
    HealthPolicy,
    HeartbeatTransport,
    PlanRuntime,
    RankHealth,
    Supervisor,
    crash,
    message_loss,
    straggler,
)
from repro.faults.health import PhiAccrualDetector
from repro.training.recipes import get_recipe
from repro.training.tasks import make_task
from repro.training.trainer import DataParallelTrainer


def card(rank, verdict, lag=1.0, phi=0.0, beats=5, last=1.0):
    return RankHealth(rank, verdict, phi, lag, beats, last)


# -- HealthPolicy ------------------------------------------------------------

def test_health_policy_validates_knobs():
    HealthPolicy()  # defaults are self-consistent
    bad = [dict(interval=0.0), dict(compute_cost=-1.0), dict(window=0),
           dict(min_history=0), dict(sigma_floor=0.0),
           dict(phi_suspect=0.0), dict(phi_crash=1.0, phi_suspect=1.5),
           dict(bootstrap_timeout=0.0), dict(reset_gap=-2.0),
           dict(straggler_ratio=1.0), dict(straggler_patience=0),
           dict(rejoin_confirmations=0), dict(escalation_flaps=0),
           dict(checkpoint_every=0)]
    for kwargs in bad:
        with pytest.raises(ValueError):
            HealthPolicy(**kwargs)


# -- PhiAccrualDetector ------------------------------------------------------

def test_phi_is_zero_on_time_and_grows_with_silence():
    det = PhiAccrualDetector(HealthPolicy())
    for t in (1.0, 2.0, 3.0, 4.0):
        det.heartbeat(t)
    assert det.beats_seen == 4
    assert det.mean_interval() == pytest.approx(1.0)
    assert det.phi(4.5) == 0.0          # gap shorter than the mean
    phis = [det.phi(4.0 + gap) for gap in (1.5, 2.0, 3.0, 5.0)]
    assert phis == sorted(phis) and phis[0] > 0.0
    policy = HealthPolicy()
    assert det.phi(4.0 + 3.0) >= policy.phi_crash  # two missed beats


def test_phi_before_any_beat_is_zero_and_reset_forgets_history():
    det = PhiAccrualDetector(HealthPolicy())
    assert det.phi(100.0) == 0.0
    det.heartbeat(1.0)
    det.heartbeat(2.0)
    det.reset()
    assert det.last is None and len(det.intervals) == 0
    assert det.beats_seen == 2           # lifetime count survives reset


def test_sigma_floor_keeps_metronome_history_finite():
    det = PhiAccrualDetector(HealthPolicy())
    for t in range(1, 12):
        det.heartbeat(float(t))          # zero-variance inter-arrivals
    assert np.isfinite(det.phi(11.0 + 2.4))


# -- HealthMonitor -----------------------------------------------------------

def test_monitor_bootstrap_grace_then_crashed_from_start():
    monitor = HealthMonitor(2)
    for step in range(5):
        cards = monitor.observe(step, {0: step + 0.5, 1: None})
        if (step + 1) < HealthPolicy().bootstrap_timeout:
            assert cards[1].verdict == "healthy"   # still in grace
        else:
            assert cards[1].verdict == "crashed"
            assert cards[1].beats_seen == 0
    assert cards[0].verdict == "healthy"


def test_monitor_holds_late_beat_for_next_window():
    monitor = HealthMonitor(2)
    # rank 1's beat for step 0 arrives inside step 1's window
    monitor.observe(0, {0: 0.5, 1: 1.4})
    assert monitor._detectors[1].beats_seen == 0
    cards = monitor.observe(1, {0: 1.5, 1: None})
    assert monitor._detectors[1].beats_seen == 1
    assert cards[1].lag > cards[0].lag   # late vs schedule shows as lag


def test_monitor_straggler_needs_patience():
    policy = HealthPolicy()
    monitor = HealthMonitor(4, policy)
    verdicts = []
    for step in range(6):
        base = step + 0.5
        # rank 3 runs at 2.5x compute: offset 1.25 vs fleet median 0.5
        cards = monitor.observe(step, {0: base, 1: base, 2: base,
                                       3: step + 1.25})
        verdicts.append(cards[3].verdict)
    assert "straggler" in verdicts
    first = verdicts.index("straggler")
    assert all(v != "straggler" for v in verdicts[:first])
    assert first + 1 >= policy.straggler_patience
    assert all(v == "straggler" for v in verdicts[first:])


def test_monitor_resets_history_on_rejoin_gap():
    monitor = HealthMonitor(1, HealthPolicy())
    for step in range(4):
        monitor.observe(step, {0: step + 0.5})
    # long silence, then beats resume: the outage gap must not enter
    # the inter-arrival history as a sample
    for step in range(4, 10):
        monitor.observe(step, {0: None})
    cards = monitor.observe(10, {0: 10.5})
    det = monitor._detectors[0]
    assert max(det.intervals, default=0.0) < 2.0
    assert cards[0].verdict == "healthy"


def test_monitor_reset_clears_all_state():
    monitor = HealthMonitor(2)
    monitor.observe(0, {0: 0.5, 1: 0.5})
    monitor.reset()
    assert all(d.last is None for d in monitor._detectors)
    assert monitor._offset == [None, None]
    assert monitor._pending == []


# -- HeartbeatTransport ------------------------------------------------------

def test_dead_rank_emits_nothing():
    plan = FaultPlan("one-dead", 4, 0, (crash(rank=2, at=0),))
    runtime = PlanRuntime(plan)
    transport = HeartbeatTransport(runtime, 4)
    runtime.advance(0)
    arrivals = transport.beats(0)
    assert arrivals[2] is None
    assert all(arrivals[r] is not None for r in (0, 1, 3))
    assert runtime.counters.heartbeats == 3
    # a dead process never emitted, so nothing was *lost* on the wire
    assert runtime.counters.heartbeat_misses == 0


def test_monitor_rank_loopback_never_drops():
    plan = FaultPlan("storm", 2, 7,
                     (message_loss(0, None, probability=0.99),))
    runtime = PlanRuntime(plan)
    transport = HeartbeatTransport(runtime, 2)
    for step in range(10):
        runtime.advance(step)
        arrivals = transport.beats(step)
        assert arrivals[0] is not None   # loopback exempt from loss
    assert runtime.counters.heartbeat_misses > 0
    assert any(r.kind == "hb_lost" for r in runtime.records)


def test_straggler_beat_emitted_late():
    plan = FaultPlan("slow", 4, 0,
                     (straggler(0, None, rank=3, factor=3.0),))
    runtime = PlanRuntime(plan)
    transport = HeartbeatTransport(runtime, 4)
    runtime.advance(0)
    arrivals = transport.beats(0)
    healthy = [arrivals[r] for r in (1, 2)]
    # stretched compute delays the emission; healthy peers must not be
    # queued behind it on the shared store-and-forward links
    assert arrivals[3] > max(healthy)
    assert max(healthy) < 1.0


# -- Supervisor --------------------------------------------------------------

def test_supervisor_requires_rejoin_confirmations():
    sup = Supervisor(2)
    d = sup.decide(0, {0: card(0, "healthy"), 1: card(1, "crashed")})
    assert d.newly_suspected == (1,) and d.believed_dead == {1}
    # one healthy assessment is not enough to re-admit
    d = sup.decide(1, {0: card(0, "healthy"), 1: card(1, "healthy")})
    assert d.admitted == () and 1 in d.believed_dead
    # an unhealthy assessment resets the confirmation streak
    d = sup.decide(2, {0: card(0, "healthy"), 1: card(1, "flaky")})
    d = sup.decide(3, {0: card(0, "healthy"), 1: card(1, "healthy")})
    assert d.admitted == ()
    d = sup.decide(4, {0: card(0, "healthy"), 1: card(1, "healthy")})
    assert d.admitted == (1,) and d.believed_dead == frozenset()
    assert d.participants == (0, 1)


def test_supervisor_quorum_floor_readmits_least_slow_straggler():
    sup = Supervisor(4)                  # floor = ceil(0.5 * 4) = 2
    cards = {0: card(0, "healthy"),
             1: card(1, "straggler", lag=2.5),
             2: card(2, "straggler", lag=4.0),
             3: card(3, "crashed")}
    d = sup.decide(0, cards)
    # rank 1 (least-slow straggler) is pulled back to satisfy quorum
    assert d.participants == (0, 1)
    assert d.demoted == (2,)


def test_supervisor_escalates_after_repeated_flaps():
    policy = HealthPolicy()
    sup = Supervisor(2)
    escalated = []
    for cycle in range(policy.escalation_flaps):
        d = sup.decide(2 * cycle,
                       {0: card(0, "healthy"), 1: card(1, "crashed")})
        escalated.append(d.escalate)
        sup.believed_dead.discard(1)     # simulate an admitted rejoin
    assert escalated == [False, False, True]
    # flap counter resets after escalation fires
    d = sup.decide(99, {0: card(0, "healthy"), 1: card(1, "crashed")})
    assert not d.escalate


def test_supervisor_reset_forgets_beliefs():
    sup = Supervisor(2)
    sup.decide(0, {0: card(0, "healthy"), 1: card(1, "crashed")})
    sup.reset()
    assert sup.believed_dead == set()
    assert not sup.flaps and not sup._pending_rejoin


# -- supervised training integration -----------------------------------------

def _supervised_trainer(plan, store=None, seed=0):
    recipe = get_recipe("mlp")
    task = make_task("mlp", batch_size=recipe.batch_size, **recipe.kwargs())
    config = CGXConfig(compression=CompressionSpec("qsgd", bits=4))
    return DataParallelTrainer(task, world_size=4, config=config,
                               recipe=recipe, seed=seed, fault_plan=plan,
                               supervised=True, store=store)


def test_supervised_fault_free_run_raises_no_alarms():
    plan = FaultPlan("quiet", 4, 0, ())
    trainer = _supervised_trainer(plan)
    result = trainer.train(8)
    assert np.isfinite(result.final_loss)
    c = trainer.fault_runtime.counters
    assert c.suspected_crashes == 0
    assert c.false_suspicions == 0
    assert c.straggler_demotions == 0
    assert c.oracle_reads == 0
    assert c.heartbeats > 0


def test_supervised_escalation_restores_from_durable_store(tmp_path):
    # one rank flaps crash/rejoin three times: the third suspicion must
    # escalate to a checkpoint restore instead of yet another transfer
    plan = FaultPlan("flapper", 4, 0,
                     (crash(rank=1, at=2, rejoin=4),
                      crash(rank=1, at=8, rejoin=10),
                      crash(rank=1, at=14, rejoin=None)))
    store = CheckpointStore(str(tmp_path))
    trainer = _supervised_trainer(plan, store=store)
    result = trainer.train(24)
    assert np.isfinite(result.final_loss)
    c = trainer.fault_runtime.counters
    assert c.suspected_crashes >= 3
    assert c.escalations >= 1
    assert c.store_writes >= 1
    kinds = [r.kind for r in trainer.fault_runtime.records]
    assert "escalate" in kinds
    assert "escalation_restore" in kinds
    assert store.steps()                 # durable checkpoints on disk


def test_supervised_same_seed_runs_are_byte_identical():
    logs = []
    for _ in range(2):
        plan = FaultPlan("flap-once", 4, 3, (crash(rank=2, at=3, rejoin=7),))
        trainer = _supervised_trainer(plan, seed=11)
        trainer.train(12)
        logs.append(trainer.fault_runtime.log_bytes())
    assert logs[0] == logs[1]

"""Property-based tests over the engine's reduce path.

These are the invariants every CGX deployment depends on, checked over
randomized layer layouts, world sizes, schemes and compression specs:

* dense reduction equals the exact mean;
* all workers always receive bit-identical gradients (no divergence);
* shapes and names are preserved;
* compressed reduction error is bounded relative to the gradient norm.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.compression import CompressionSpec
from repro.core import CGXConfig, CommunicationEngine

SCHEMES = ["sra", "ring", "tree", "allgather", "ps"]


def layouts():
    """Random layer layouts: a few tensors with mixed shapes/names."""
    shape = st.sampled_from([(8,), (64,), (300,), (16, 8), (40, 5), (4, 4, 4)])
    kind = st.sampled_from(["weight", "bias", "ln.weight"])
    layer = st.tuples(kind, shape)
    return st.lists(layer, min_size=1, max_size=5)


def grads_for(layout, world, seed):
    per_worker = []
    for w in range(world):
        rng = np.random.default_rng(seed + w)
        grads = {}
        for i, (kind, shape) in enumerate(layout):
            grads[f"l{i}.{kind}"] = rng.normal(size=shape).astype(np.float32)
        per_worker.append(grads)
    return per_worker


@given(layout=layouts(), world=st.integers(1, 6),
       scheme=st.sampled_from(SCHEMES), seed=st.integers(0, 100))
@settings(max_examples=40, deadline=None)
def test_dense_reduce_is_exact_mean(layout, world, scheme, seed):
    config = CGXConfig(compression=CompressionSpec("none"), scheme=scheme)
    engine = CommunicationEngine(config)
    per_worker = grads_for(layout, world, seed)
    reduced, _ = engine.reduce(per_worker, np.random.default_rng(0))
    for name in per_worker[0]:
        expected = np.mean([g[name] for g in per_worker], axis=0)
        np.testing.assert_allclose(reduced[0][name], expected,
                                   rtol=1e-4, atol=1e-5)


@given(layout=layouts(), world=st.integers(2, 6),
       scheme=st.sampled_from(SCHEMES),
       bits=st.integers(2, 8), bucket=st.sampled_from([16, 64, 128]),
       seed=st.integers(0, 100))
@settings(max_examples=40, deadline=None)
def test_compressed_reduce_identical_across_workers(layout, world, scheme,
                                                    bits, bucket, seed):
    config = CGXConfig(
        compression=CompressionSpec("qsgd", bits=bits, bucket_size=bucket),
        scheme=scheme,
    )
    engine = CommunicationEngine(config)
    per_worker = grads_for(layout, world, seed)
    reduced, _ = engine.reduce(per_worker, np.random.default_rng(1))
    for name in per_worker[0]:
        assert reduced[0][name].shape == per_worker[0][name].shape
        for w in range(1, world):
            np.testing.assert_array_equal(reduced[0][name],
                                          reduced[w][name])


@given(layout=layouts(), world=st.integers(2, 4), seed=st.integers(0, 50))
@settings(max_examples=30, deadline=None)
def test_compressed_error_bounded(layout, world, seed):
    """4-bit SRA reduction error stays a bounded fraction of the mean."""
    engine = CommunicationEngine(CGXConfig.cgx_default())
    per_worker = grads_for(layout, world, seed)
    reduced, _ = engine.reduce(per_worker, np.random.default_rng(2))
    for name in per_worker[0]:
        expected = np.mean([g[name] for g in per_worker], axis=0)
        norm = np.linalg.norm(expected)
        if norm < 1e-6:
            continue
        error = np.linalg.norm(reduced[0][name] - expected)
        assert error <= norm  # never worse than dropping the gradient


@given(layout=layouts(), world=st.integers(2, 4),
       mode=st.sampled_from(["cgx", "fused"]), seed=st.integers(0, 50))
@settings(max_examples=30, deadline=None)
def test_plans_cover_every_tensor_once(layout, world, mode, seed):
    from repro.core import LayerInfo

    engine = CommunicationEngine(CGXConfig.cgx_default())
    per_worker = grads_for(layout, world, seed)
    layers = [LayerInfo(name, g.size, tuple(g.shape))
              for name, g in per_worker[0].items()]
    plan = engine.plan(layers, mode=mode)
    planned = [l.name for pkg in plan for l in pkg.layers]
    assert sorted(planned) == sorted(g for g in per_worker[0])

"""Tests for the public CGX session API and the DDP wrapper."""

import numpy as np
import pytest

from repro.compression import CompressionSpec
from repro.core import CGXConfig, CGXDistributedDataParallel, CGXSession
from repro.nn import SGD, build_model
from repro.nn.data import SyntheticVectors
from repro.nn.loss import softmax_cross_entropy


# -- session API (Listing 1) -----------------------------------------------------

def model_layout():
    model = build_model("vit", seed=0)
    return [(name, p.numel) for name, p in model.named_parameters()]


def test_listing1_flow():
    session = CGXSession()
    session.register_model(model_layout())
    session.exclude_layer("ln")
    session.exclude_layer("bias")
    session.set_quantization_bits(4, bucket_size=128)
    plan = session.plan()
    assert any(p.name == "filtered" for p in plan)
    compressed = [p for p in plan if p.spec.method == "qsgd"]
    assert compressed and all(p.spec.bits == 4 for p in compressed)


def test_register_model_required():
    session = CGXSession()
    with pytest.raises(RuntimeError):
        session.plan()


def test_register_model_rejects_empty():
    with pytest.raises(ValueError):
        CGXSession().register_model([])


def test_exclude_layer_appends_keyword():
    session = CGXSession()
    before = len(session.config.filtered_keywords)
    session.exclude_layer("embed")
    assert len(session.config.filtered_keywords) == before + 1
    with pytest.raises(ValueError):
        session.exclude_layer("")


def test_set_layer_compression_override():
    session = CGXSession()
    session.register_model(model_layout())
    session.set_layer_compression(
        "blocks.0.attn.qkv.weight", CompressionSpec("topk", density=0.01))
    plan = session.plan()
    pkg = next(p for p in plan if p.name == "blocks.0.attn.qkv.weight")
    assert pkg.spec.method == "topk"


def test_set_layer_bits():
    session = CGXSession()
    session.register_model(model_layout())
    session.set_layer_bits("head.weight", 2, bucket_size=64)
    spec = session.config.per_layer["head.weight"]
    assert spec.bits == 2 and spec.bucket_size == 64


def test_set_quantization_bits_from_non_qsgd_config():
    session = CGXSession(CGXConfig(compression=CompressionSpec("none")))
    session.set_quantization_bits(8)
    assert session.config.compression.method == "qsgd"
    assert session.config.compression.bits == 8


# -- DDP wrapper ---------------------------------------------------------------

def make_ddp(world=4, config=None, seed=5):
    replicas = [build_model("mlp", seed=seed) for _ in range(world)]
    return replicas, CGXDistributedDataParallel(
        replicas, config or CGXConfig.cgx_default(), seed=seed)


def run_steps(replicas, ddp, steps=10, lr=0.05):
    data = SyntheticVectors(seed=0)
    opts = [SGD(r.parameters(), lr=lr, momentum=0.9) for r in replicas]
    rng = np.random.default_rng(1)
    for _ in range(steps):
        for r in replicas:
            r.zero_grad()
            x, y = data.sample(16, rng)
            _, grad = softmax_cross_entropy(r(x), y)
            r.backward(grad)
        ddp.synchronize()
        for o in opts:
            o.step()


@pytest.mark.parametrize("scheme", ["sra", "ring", "tree", "allgather"])
def test_replicas_stay_bit_identical(scheme):
    config = CGXConfig.cgx_default()
    config.scheme = scheme
    replicas, ddp = make_ddp(config=config)
    run_steps(replicas, ddp, steps=5)
    assert ddp.check_in_sync()


def test_replicas_stay_identical_with_topk_error_feedback():
    config = CGXConfig.cgx_default()
    config.compression = CompressionSpec("topk", density=0.1,
                                         error_feedback=True)
    replicas, ddp = make_ddp(config=config)
    run_steps(replicas, ddp, steps=5)
    assert ddp.check_in_sync()


def test_missing_gradients_treated_as_zero():
    replicas, ddp = make_ddp(world=2)
    # only worker 0 runs backward; worker 1 contributes zeros
    data = SyntheticVectors(seed=0)
    x, y = data.sample(8, np.random.default_rng(0))
    replicas[0].zero_grad()
    _, grad = softmax_cross_entropy(replicas[0](x), y)
    replicas[0].backward(grad)
    replicas[1].zero_grad()
    ddp.synchronize()
    g0 = dict(replicas[0].named_parameters())["0.weight"].grad
    g1 = dict(replicas[1].named_parameters())["0.weight"].grad
    np.testing.assert_array_equal(g0, g1)
    assert np.any(g0 != 0)


def test_mismatched_replicas_rejected():
    a = build_model("mlp", seed=0)
    b = build_model("vit", seed=0)
    with pytest.raises(ValueError):
        CGXDistributedDataParallel([a, b])


def test_empty_replica_list_rejected():
    with pytest.raises(ValueError):
        CGXDistributedDataParallel([])


def test_synchronize_reports_stats():
    replicas, ddp = make_ddp()
    data = SyntheticVectors(seed=0)
    for r in replicas:
        r.zero_grad()
        x, y = data.sample(8, np.random.default_rng(0))
        _, grad = softmax_cross_entropy(r(x), y)
        r.backward(grad)
    report = ddp.synchronize()
    assert report.packages > 0
    assert report.wire_bytes > 0
    assert ddp.last_report is report


def test_check_in_sync_detects_divergence():
    replicas, ddp = make_ddp(world=2)
    assert ddp.check_in_sync()
    dict(replicas[1].named_parameters())["0.weight"].data += 1.0
    assert not ddp.check_in_sync()

"""Elastic membership: plan events, coordinator protocol, trainer runs."""

import numpy as np
import pytest

from repro.core import AdaptiveController, CGXConfig
from repro.faults import (CheckpointStore, ElasticCoordinator, FaultPlan,
                          PlanRuntime, check_drain_protocol, crash,
                          elastic_events, fleet_alpha_scale,
                          gpu_compute_scale, make_campaign, preempt_warning,
                          provision, spot_churn_campaign, straggler)
from repro.training.recipes import get_recipe
from repro.training.tasks import make_task
from repro.training.trainer import DataParallelTrainer

WORLD = 4
STEPS = 20


def _trainer(plan, supervised=False, store=None, adaptive=None, seed=0,
             overlap=False):
    recipe = get_recipe("mlp")
    task = make_task("mlp", batch_size=recipe.batch_size, **recipe.kwargs())
    return DataParallelTrainer(
        task, world_size=WORLD, config=CGXConfig.cgx_default(128),
        recipe=recipe, seed=seed, fault_plan=plan, supervised=supervised,
        store=store, adaptive=adaptive, overlap=overlap)


def _run(trainer, steps=STEPS):
    return [trainer.train_step() for _ in range(steps)]


# -- plan events and validation hardening ------------------------------------

def test_preempt_warning_event_fields():
    event = preempt_warning(rank=2, at=5, deadline_steps=4)
    assert event.kind == "preempt_warning" and event.deadline == 9
    assert event.to_dict()["deadline_steps"] == 4


def test_preempt_warning_rejects_empty_drain_window():
    with pytest.raises(ValueError, match="deadline_steps must be > 0"):
        preempt_warning(rank=0, at=3, deadline_steps=0)
    with pytest.raises(ValueError, match="deadline_steps must be > 0"):
        preempt_warning(rank=0, at=3, deadline_steps=-2)


def test_provision_requires_known_gpu():
    assert provision(rank=4, at=2, gpu_spec="V100").gpu == "V100"
    with pytest.raises(ValueError, match="unknown gpu"):
        provision(rank=4, at=2, gpu_spec="TPUv9")


def test_crash_rejoin_before_crash_names_both_steps():
    with pytest.raises(ValueError,
                       match="rejoin step 3 must be > crash step 5"):
        crash(rank=1, at=5, rejoin=3)


def test_provision_rejects_rank_already_in_world():
    with pytest.raises(ValueError, match="already in the initial world"):
        FaultPlan("p", WORLD, 0, (provision(rank=1, at=2),))


def test_provision_rejects_duplicate_rank():
    with pytest.raises(ValueError, match="provisioned twice"):
        FaultPlan("p", WORLD, 0, (provision(rank=4, at=2),
                                  provision(rank=4, at=6)))


def test_provision_ranks_must_be_contiguous():
    with pytest.raises(ValueError, match="extend the world contiguously"):
        FaultPlan("p", WORLD, 0, (provision(rank=6, at=2),))


def test_fault_on_provisioned_rank_cannot_predate_its_boot():
    with pytest.raises(ValueError, match="machine does not exist yet"):
        FaultPlan("p", WORLD, 0, (provision(rank=4, at=6),
                                  crash(rank=4, at=3)))
    with pytest.raises(ValueError, match="machine does not exist yet"):
        FaultPlan("p", WORLD, 0, (provision(rank=4, at=6),
                                  preempt_warning(rank=4, at=2,
                                                  deadline_steps=3)))


def test_warning_twice_on_same_rank_rejected():
    with pytest.raises(ValueError, match="warned twice"):
        FaultPlan("p", WORLD, 0,
                  (preempt_warning(rank=1, at=2, deadline_steps=3),
                   preempt_warning(rank=1, at=9, deadline_steps=3)))


def test_provisioned_rank_usable_by_later_events():
    plan = FaultPlan("p", WORLD, 0,
                     (provision(rank=4, at=2),
                      straggler(5, 8, rank=4, factor=1.5)))
    assert plan.max_world == WORLD + 1


def test_plan_roundtrips_elastic_events():
    plan = spot_churn_campaign(WORLD, seed=3)
    clone = FaultPlan.from_dict(plan.to_dict())
    assert clone == plan and elastic_events(clone)


# -- physics: notices are control-plane, reclaim is unconditional ------------

def test_notices_do_not_trip_the_oracle_guard():
    from repro.faults import oracle_guard

    plan = spot_churn_campaign(WORLD)
    faults = plan.at_step(4)
    with oracle_guard() as reads:
        faults.preempt_notices()
        faults.provision_notices()
    assert reads == []
    with oracle_guard() as reads:
        faults.dead_ranks()
    assert reads == ["dead_ranks"]


def test_warned_rank_is_dead_from_its_deadline():
    plan = FaultPlan("p", WORLD, 0,
                     (preempt_warning(rank=3, at=4, deadline_steps=3),))
    assert 3 not in plan.at_step(6).dead_ranks()
    assert 3 in plan.at_step(7).dead_ranks()
    assert 3 in plan.at_step(15).dead_ranks()


def test_reclaim_recorded_as_spot_reclaim_not_crash():
    plan = FaultPlan("p", WORLD, 0,
                     (preempt_warning(rank=3, at=2, deadline_steps=2),))
    runtime = PlanRuntime(plan)
    for step in range(1, 6):
        runtime.advance(step)
    kinds = [r.kind for r in runtime.records]
    assert "spot_reclaim" in kinds and "crash" not in kinds
    assert runtime.counters.spot_reclaims == 1


# -- heterogeneous envelopes --------------------------------------------------

def test_gpu_compute_scale_anchored_on_table1():
    assert gpu_compute_scale("RTX3090") == pytest.approx(1.0)
    assert gpu_compute_scale("RTX2080Ti") > 1.5   # slower than reference
    assert gpu_compute_scale("V100") < 1.0        # faster


def test_fleet_alpha_scale_clamped():
    assert fleet_alpha_scale(["RTX3090"] * 4) == pytest.approx(1.0)
    assert fleet_alpha_scale(["V100"] * 8) == pytest.approx(1226 / 850)
    assert fleet_alpha_scale(["RTX2080Ti"] * 8) == 0.75   # lo clamp
    assert fleet_alpha_scale([]) == 1.0


# -- coordinator protocol -----------------------------------------------------

def _coordinator(plan, supervised=False):
    runtime = PlanRuntime(plan)
    return ElasticCoordinator(runtime, plan.world,
                              supervised=supervised), runtime


def test_coordinator_admits_after_boot_when_drained():
    plan = FaultPlan("p", WORLD, 0, (provision(rank=4, at=3),))
    coord, runtime = _coordinator(plan)
    for step in (1, 2):
        coord.poll_notices(step, runtime.advance(step))
        assert coord.admit(step, drained=True).joined == ()
    coord.poll_notices(3, runtime.advance(3))
    decision = coord.admit(3, drained=True)
    assert decision.joined == (4,) and coord.member_list() == [0, 1, 2, 3, 4]
    assert runtime.counters.provision_admissions == 1


def test_coordinator_defers_admission_until_drained():
    plan = FaultPlan("p", WORLD, 0, (provision(rank=4, at=1),))
    coord, runtime = _coordinator(plan)
    coord.poll_notices(1, runtime.advance(1))
    assert coord.admit(1, drained=False).deferred == (4,)
    assert coord.admit(2, drained=True).joined == (4,)


def test_supervised_coordinator_waits_for_confirmation():
    plan = FaultPlan("p", WORLD, 0, (provision(rank=4, at=1),))
    coord, runtime = _coordinator(plan, supervised=True)
    coord.poll_notices(1, runtime.advance(1))
    assert coord.admit(1, drained=True).joined == ()   # unconfirmed
    coord.confirm([4])
    assert coord.admit(2, drained=True).joined == (4,)


def test_draining_rank_exits_before_deadline():
    plan = FaultPlan("p", WORLD, 0,
                     (preempt_warning(rank=3, at=2, deadline_steps=4),))
    coord, runtime = _coordinator(plan)
    faults = runtime.advance(2)
    coord.poll_notices(2, faults)
    coord.admit(2, drained=True)
    exited = coord.end_step(2, drained=True, dead=faults.dead_ranks())
    assert exited == (3,) and coord.member_list() == [0, 1, 2]
    assert runtime.counters.graceful_exits == 1
    assert check_drain_protocol(plan, runtime.records) == []


def test_drain_blocked_by_quorum_floor_degrades_at_deadline():
    from repro.faults import ResiliencePolicy

    # floor == world: the exit is never allowed, so the rank must
    # degrade to the crash path (never worse than a plain crash)
    plan = FaultPlan("p", 2, 0,
                     (preempt_warning(rank=1, at=1, deadline_steps=2),))
    runtime = PlanRuntime(plan, ResiliencePolicy(min_quorum_fraction=1.0))
    coord = ElasticCoordinator(runtime, 2)
    for step in (1, 2, 3):
        faults = runtime.advance(step)
        coord.poll_notices(step, faults)
        coord.admit(step, drained=True)
        coord.end_step(step, drained=True, dead=faults.dead_ranks())
    assert coord.member_list() == [0, 1]   # slot remains; physics kills it
    assert coord.degraded == {1}
    assert runtime.counters.drain_missed == 1
    assert runtime.counters.graceful_exits == 0
    assert check_drain_protocol(plan, runtime.records) == []


def test_tampered_log_trips_drain_protocol_audit():
    # a warned rank that neither drains nor degrades — e.g. a trainer
    # that keeps it sending past the reclaim — is caught from the log
    plan = FaultPlan("p", WORLD, 0,
                     (preempt_warning(rank=3, at=2, deadline_steps=3),))
    runtime = PlanRuntime(plan)
    coord = ElasticCoordinator(runtime, WORLD)
    for step in range(1, 8):
        faults = runtime.advance(step)
        coord.poll_notices(step, faults)
        coord.admit(step, drained=True)
        # tamper: the graceful-exit/degrade bookkeeping never runs
    violations = check_drain_protocol(plan, runtime.records)
    assert len(violations) == 1
    assert "neither drained out nor degraded" in violations[0]


def test_tampered_late_exit_trips_audit():
    from repro.faults import FaultRecord

    plan = FaultPlan("p", WORLD, 0,
                     (preempt_warning(rank=3, at=2, deadline_steps=3),))
    # a forged log whose exit lands at the deadline itself — one step
    # past the last legal drain step
    records = [FaultRecord(5, "spot_exit",
                           tuple(sorted({"rank": 3, "deadline": 5}.items())))]
    violations = check_drain_protocol(plan, records)
    assert any("kept sending after the provider reclaimed" in v
               for v in violations)


def test_departed_rank_reappearing_trips_audit():
    from repro.faults import FaultRecord

    plan = FaultPlan("p", WORLD, 0,
                     (preempt_warning(rank=3, at=2, deadline_steps=3),))
    records = [
        FaultRecord(3, "spot_exit",
                    tuple(sorted({"rank": 3, "deadline": 5}.items()))),
        FaultRecord(7, "membership",
                    tuple(sorted({"members": "0,1,2,3"}.items()))),
    ]
    violations = check_drain_protocol(plan, records)
    assert any("reappears in the membership" in v for v in violations)


# -- end-to-end campaigns -----------------------------------------------------

def test_spot_churn_campaign_oracle_clean():
    plan = make_campaign("spot-churn", WORLD)
    trainer = _trainer(plan)
    losses = _run(trainer)
    runtime = trainer.fault_runtime
    assert np.isfinite(losses[-1])
    assert runtime.counters.preempt_warnings == 2
    assert runtime.counters.graceful_exits == 2
    assert runtime.counters.provision_admissions == 2
    assert runtime.counters.drain_missed == 0
    assert trainer.elastic.member_list() == [0, 1, 4, 5]
    assert check_drain_protocol(plan, runtime.records) == []
    assert trainer.in_sync()


def test_autoscale_burst_grows_then_sheds():
    plan = make_campaign("autoscale-burst", WORLD)
    trainer = _trainer(plan)
    _run(trainer)
    coord = trainer.elastic
    assert len(coord.members) == 5       # +2 provisioned, -1 preempted
    assert coord.rank_gpus[5] == "A6000"
    assert trainer.in_sync()


def test_supervised_spot_churn_zero_oracle_reads():
    plan = make_campaign("spot-churn", WORLD)
    trainer = _trainer(plan, supervised=True)
    losses = _run(trainer)
    runtime = trainer.fault_runtime
    assert np.isfinite(losses[-1])
    assert runtime.counters.oracle_reads == 0
    assert runtime.counters.graceful_exits == 2
    assert runtime.counters.provision_admissions == 2
    assert check_drain_protocol(plan, runtime.records) == []
    # supervised growth goes through heartbeat vetting
    kinds = [r.kind for r in runtime.records]
    assert "confirm_provision" in kinds
    assert kinds.count("admit_provisioned") == 2


def test_same_seed_campaigns_byte_identical():
    for name in ("spot-churn", "autoscale-burst"):
        logs = []
        for _ in range(2):
            trainer = _trainer(make_campaign(name, WORLD), supervised=True)
            _run(trainer)
            logs.append(trainer.fault_runtime.log_bytes())
        assert logs[0] == logs[1]


def test_elastic_loss_tracks_fixed_world_baseline():
    baseline = _run(_trainer(None))
    for name in ("spot-churn", "autoscale-burst"):
        losses = _run(_trainer(make_campaign(name, WORLD)))
        assert abs(losses[-1] - baseline[-1]) < 0.02


def test_drain_checkpoint_persisted_before_departure(tmp_path):
    plan = make_campaign("spot-churn", WORLD)
    store = CheckpointStore(str(tmp_path), keep=10)
    trainer = _trainer(plan, supervised=True, store=store)
    _run(trainer)
    runtime = trainer.fault_runtime
    exit_steps = [r.step for r in runtime.records if r.kind == "spot_exit"]
    ckpt_steps = [r.step for r in runtime.records
                  if r.kind == "drain_checkpoint"]
    assert ckpt_steps and set(ckpt_steps) == set(exit_steps)
    assert set(exit_steps) <= set(store.steps())


def test_respec_on_every_composition_change():
    plan = make_campaign("spot-churn", WORLD)
    config = CGXConfig.cgx_default(128)
    adaptive = AdaptiveController(config, period=5)
    trainer = _trainer(plan, adaptive=adaptive)
    _run(trainer)
    runtime = trainer.fault_runtime
    respecs = [r for r in runtime.records if r.kind == "respec"]
    # 2 exits + 2 admissions = 4 composition changes
    assert len(respecs) == 4 and runtime.counters.respecs == 4
    worlds = [dict(r.detail)["world"] for r in respecs]
    assert worlds == [3, 4, 3, 4]
    triggers = [e["trigger"] for e in adaptive.respec_history]
    assert any(t.startswith("composition:") for t in triggers)


def test_respec_alpha_scaled_by_fleet_mix():
    plan = make_campaign("autoscale-burst", WORLD)
    config = CGXConfig.cgx_default(128)
    adaptive = AdaptiveController(config, period=3)
    trainer = _trainer(plan, adaptive=adaptive)
    _run(trainer)
    scaled = [e for e in adaptive.respec_history
              if e["trigger"].startswith("composition:")]
    assert scaled
    # the burst adds a V100 and an A6000: fleet mean shifts off 1.0
    assert any(e["alpha"] != pytest.approx(adaptive.alpha) for e in scaled)


def test_departed_replica_frozen_after_exit():
    plan = make_campaign("spot-churn", WORLD)
    trainer = _trainer(plan)
    coord = trainer.elastic
    frozen = {}
    for _ in range(STEPS):
        trainer.train_step()
        for rank in coord.departed - set(frozen):
            frozen[rank] = {n: p.data.copy() for n, p in
                            trainer.replicas[rank].named_parameters()}
    assert frozen
    for rank, weights in frozen.items():
        now = dict(trainer.replicas[rank].named_parameters())
        for name, snap in weights.items():
            assert np.array_equal(snap, now[name].data)


def test_restore_state_regrows_elastic_replicas(tmp_path):
    plan = make_campaign("autoscale-burst", WORLD)
    store = CheckpointStore(str(tmp_path))
    trainer = _trainer(plan, supervised=True, store=store)
    _run(trainer)
    assert len(trainer.replicas) == WORLD + 2
    loaded = store.load_latest()
    assert loaded is not None
    fresh = _trainer(None)
    fresh.restore_state(loaded[1])
    assert len(fresh.replicas) == WORLD + 2


def test_elastic_plan_rejects_overlap_mode():
    plan = make_campaign("spot-churn", WORLD)
    with pytest.raises(ValueError, match="overlap=False"):
        _trainer(plan, overlap=True)


def test_ddp_members_validation():
    trainer = _trainer(None)
    with pytest.raises(ValueError, match="member out of range"):
        trainer.ddp.synchronize(members=[0, 9])
    with pytest.raises(ValueError, match="are not members"):
        trainer.ddp.synchronize(participants=[3], members=[0, 1])

"""Contract checker: every CON rule fires on a fixture and the real
registry/engine come back clean."""

import numpy as np

from repro.analysis.abstract import (
    PROBE_SHAPES,
    default_registry,
    execute_behavior,
    execute_roundtrips,
    probe_specs,
    replay_adaptive_respec,
)
from repro.analysis.contracts import (
    CONTRACT_RULES,
    check_engine_wiring,
    verify_contracts,
)
from repro.compression import (
    Compressed,
    CompressionSpec,
    CompressorContract,
    ErrorFeedback,
    IdentityCompressor,
    make_compressor,
)
from repro.core import CGXConfig, CommunicationEngine


def rules_of(findings):
    return {f.rule for f in findings}


# -- the real codebase is clean ------------------------------------------------

def test_real_registry_and_engine_clean():
    assert verify_contracts() == []


def test_every_registered_method_has_probe_specs():
    for method in default_registry():
        assert probe_specs(method), f"no probe specs for {method}"


def test_findings_carry_contract_source_and_path():
    fixture = {"none": type("NoContract", (IdentityCompressor,),
                            {"contract": None})}
    findings = verify_contracts(registry=fixture, check_wiring=False)
    assert findings
    for f in findings:
        assert f.source == "contract"
        assert f.path == "<contract:none>"
        assert f.scheme == "none"
        assert f.fingerprint  # stable identity for the baseline ratchet


# -- CON001: missing/mismatched declaration -----------------------------------

def test_con001_missing_contract():
    fixture = {"none": type("NoContract", (IdentityCompressor,),
                            {"contract": None})}
    findings = verify_contracts(registry=fixture, check_wiring=False)
    assert rules_of(findings) == {"CON001"}


def test_con001_mismatched_method():
    fixture = {"none": type("WrongMethod", (IdentityCompressor,),
                            {"contract": CompressorContract("qsgd")})}
    findings = verify_contracts(registry=fixture, check_wiring=False)
    assert rules_of(findings) == {"CON001"}


# -- CON002: shape/dtype preservation -----------------------------------------

class FlatteningCompressor(IdentityCompressor):
    contract = CompressorContract("none", lossless=False)

    def decompress(self, compressed):
        return compressed.payload["values"].copy()  # loses the shape


class Float64Compressor(IdentityCompressor):
    contract = CompressorContract("none", lossless=False)

    def decompress(self, compressed):
        return super().decompress(compressed).astype(np.float64)


def test_con002_shape_violation():
    findings = verify_contracts(registry={"none": FlatteningCompressor},
                                check_wiring=False)
    assert "CON002" in rules_of(findings)


def test_con002_dtype_violation():
    findings = verify_contracts(registry={"none": Float64Compressor},
                                check_wiring=False)
    assert "CON002" in rules_of(findings)


# -- CON003: wire-byte drift ---------------------------------------------------

class InflatedClaimCompressor(IdentityCompressor):
    contract = CompressorContract("none", lossless=True)

    def compress(self, array, rng, key=None):
        compressed = super().compress(array, rng, key=key)
        return Compressed(compressed.spec, compressed.numel,
                          compressed.shape, compressed.payload,
                          compressed.nbytes + 16)  # lies about the wire


def test_con003_wire_drift():
    findings = verify_contracts(registry={"none": InflatedClaimCompressor},
                                check_wiring=False)
    assert rules_of(findings) == {"CON003"}
    assert any("16" in f.message or "payload declares" in f.message
               for f in findings)


# -- CON004: statefulness mismatch --------------------------------------------

class SecretlyStatefulCompressor(IdentityCompressor):
    contract = CompressorContract("none", lossless=False)  # claims stateless

    def __init__(self, spec):
        super().__init__(spec)
        self._step = 0

    def compress(self, array, rng, key=None):
        self._step += 1
        return super().compress(np.asarray(array) + self._step, rng, key=key)


class FalselyStatefulCompressor(IdentityCompressor):
    contract = CompressorContract("none", stateful=True, lossless=True)


def test_con004_undeclared_state():
    findings = verify_contracts(
        registry={"none": SecretlyStatefulCompressor}, check_wiring=False)
    assert "CON004" in rules_of(findings)


def test_con004_stale_stateful_declaration():
    findings = verify_contracts(
        registry={"none": FalselyStatefulCompressor}, check_wiring=False)
    assert "CON004" in rules_of(findings)


# -- CON005: rng mismatch ------------------------------------------------------

class SecretlyStochasticCompressor(IdentityCompressor):
    contract = CompressorContract("none", lossless=False)  # claims rng-free

    def compress(self, array, rng, key=None):
        noise = rng.standard_normal(np.shape(array)).astype(np.float32)
        return super().compress(np.asarray(array) + 0.01 * noise, rng,
                                key=key)


class FalselyStochasticCompressor(IdentityCompressor):
    contract = CompressorContract("none", uses_rng=True, lossless=True)


def test_con005_undeclared_rng_use():
    findings = verify_contracts(
        registry={"none": SecretlyStochasticCompressor}, check_wiring=False)
    assert "CON005" in rules_of(findings)


def test_con005_stale_rng_declaration():
    findings = verify_contracts(
        registry={"none": FalselyStochasticCompressor}, check_wiring=False)
    assert "CON005" in rules_of(findings)


# -- CON006: error-feedback wiring --------------------------------------------

def test_con006_topk_without_error_feedback():
    config = CGXConfig(compression=CompressionSpec("topk", density=0.1))
    findings = check_engine_wiring(configs=[config])
    assert "CON006" in rules_of(findings)
    assert any("topk" in f.message for f in findings)


def test_con006_dgc_double_wrapped():
    config = CGXConfig(compression=CompressionSpec(
        "dgc", density=0.05, error_feedback=True))
    findings = check_engine_wiring(configs=[config])
    assert any(f.rule == "CON006" and "own residual" in f.message
               for f in findings)


def test_con006_correctly_wired_configs_clean():
    configs = [
        CGXConfig(compression=CompressionSpec("topk", density=0.1,
                                              error_feedback=True)),
        CGXConfig(compression=CompressionSpec("dgc", density=0.05)),
    ]
    findings = check_engine_wiring(configs=configs)
    assert "CON006" not in rules_of(findings)


# -- CON007: residuals dropped on same-method respec --------------------------

class LegacyEngine(CommunicationEngine):
    """Pre-fix behaviour: rebuild on any spec change, residuals lost."""

    def _compressor_for(self, package):
        comp = self._compressors.get(package.name)
        if comp is None or comp.spec != package.spec:
            comp = make_compressor(package.spec)
            if package.spec.error_feedback:
                comp = ErrorFeedback(comp)
            self._compressors[package.name] = comp
        return comp


def test_con007_legacy_engine_drops_residuals():
    findings = check_engine_wiring(engine_cls=LegacyEngine)
    assert "CON007" in rules_of(findings)


def test_con007_current_engine_carries_residuals():
    respec = replay_adaptive_respec()
    assert respec["rebuilt"] and respec["carried"]
    assert "CON007" not in rules_of(check_engine_wiring())


# -- CON008: lossless violated -------------------------------------------------

class RoundingCompressor(IdentityCompressor):
    contract = CompressorContract("none", lossless=True)

    def decompress(self, compressed):
        return np.round(super().decompress(compressed), 1)


def test_con008_lossless_violation():
    findings = verify_contracts(registry={"none": RoundingCompressor},
                                check_wiring=False)
    assert rules_of(findings) == {"CON008"}


# -- the abstract executor itself ----------------------------------------------

def test_roundtrip_observations_cover_all_probe_shapes():
    obs = execute_roundtrips(IdentityCompressor, CompressionSpec("none"))
    assert [o.shape for o in obs] == list(PROBE_SHAPES)
    for o in obs:
        assert o.claimed_bytes == o.declared_bytes == o.measured_bytes
        assert o.exact  # identity is lossless


def test_behavior_probe_detects_qsgd_rng():
    cls = default_registry()["qsgd"]
    behavior = execute_behavior(cls, CompressionSpec("qsgd", bits=4,
                                                     bucket_size=32))
    assert behavior.rng_sensitive
    assert not behavior.repeat_differs


def test_behavior_probe_detects_powersgd_state():
    cls = default_registry()["powersgd"]
    behavior = execute_behavior(cls, CompressionSpec("powersgd", rank=4))
    assert behavior.repeat_differs  # warm start changes the payload
    assert not behavior.rng_sensitive


def test_contract_rules_table_complete():
    assert set(CONTRACT_RULES) == {f"CON00{i}" for i in range(1, 9)}

"""Liveness certifier: every DLV rule fires on a fixture, the DPOR
explorer prunes the interleaving space to a sliver of the factorial
bound, and the full (scheme x world x campaign) battery certifies
clean."""

import textwrap

import pytest

from repro.analysis.explore import (
    Op,
    build_programs,
    explore,
    fair_schedule,
    greedy_run,
    interleaving_bound,
    phase_segments,
)
from repro.analysis.liveness import (
    DLV_RULES,
    analyze_segment,
    analyze_trace_liveness,
    explore_segment,
    fair_segment,
    lint_blocking,
    lint_blocking_source,
    verify_liveness,
)
from repro.analysis.schedule import SchemeCase, trace_case
from repro.collectives.trace import (
    capture,
    emit_recv,
    emit_send,
    phase_scope,
)
from repro.faults.cases import (
    LIVENESS_CAMPAIGNS,
    liveness_cases,
    trace_liveness_case,
)

CASE_PATH = "<liveness:toy@world=2/none>"


def rules_of(findings):
    return {f.rule for f in findings}


def trace_of(body):
    with capture() as trace:
        body()
    return trace


# -- fixtures emitting raw schedule events -------------------------------------

def cyclic_deadlock():
    """Two ranks, each receiving before it sends: the classic cycle."""
    emit_recv(0, 1, 8, step=0, tag="x")   # rank 0 blocks on 1->0
    emit_recv(1, 0, 8, step=0, tag="y")   # rank 1 blocks on 0->1
    emit_send(0, 1, 8, step=0, tag="y")   # ...which rank 0 would send
    emit_send(1, 0, 8, step=0, tag="x")   # ...which rank 1 would send


def orphan_recv():
    emit_send(0, 1, 8, step=0, tag="ok")
    emit_recv(1, 0, 8, step=0, tag="ok")
    emit_recv(1, 0, 8, step=0, tag="missing")


def orphan_send():
    emit_send(0, 1, 8, step=0, tag="ok")
    emit_recv(1, 0, 8, step=0, tag="ok")
    emit_send(0, 1, 8, step=0, tag="unconsumed")


# -- DLV001: wait-for cycles ---------------------------------------------------

def test_dlv001_cyclic_deadlock_flagged():
    trace = trace_of(cyclic_deadlock)
    findings = analyze_segment("step", trace.events, CASE_PATH,
                               scheme="toy", world=2)
    assert rules_of(findings) == {"DLV001"}
    (finding,) = findings
    assert "0 -> 1 -> 0" in finding.message
    assert finding.source == "liveness"
    assert finding.path == CASE_PATH


def test_dlv001_through_full_trace_pipeline():
    trace = trace_of(lambda: None)
    with capture() as trace:
        with phase_scope("step"):
            cyclic_deadlock()
    findings = analyze_trace_liveness(trace, CASE_PATH, scheme="toy",
                                      world=2)
    # the wait-for analysis diagnoses the cycle; the explorer
    # independently certifies a deadlocking interleaving is reachable
    assert {"DLV001", "DLV004"} <= rules_of(findings)


def test_greedy_run_is_stuck_on_the_cycle():
    trace = trace_of(cyclic_deadlock)
    result = greedy_run(build_programs(trace.events))
    assert not result.completed
    assert set(result.blocked) == {0, 1}
    assert all(op.kind == "recv" for op in result.blocked.values())


# -- DLV002: orphan endpoints --------------------------------------------------

def test_dlv002_orphan_recv_flagged():
    trace = trace_of(orphan_recv)
    findings = analyze_segment("step", trace.events, CASE_PATH)
    assert rules_of(findings) == {"DLV002"}
    (finding,) = findings
    assert "no matching send" in finding.message


def test_dlv002_orphan_send_flagged():
    trace = trace_of(orphan_send)
    findings = analyze_segment("step", trace.events, CASE_PATH)
    assert rules_of(findings) == {"DLV002"}
    (finding,) = findings
    assert "never received" in finding.message


def test_matched_pairs_are_clean():
    trace = trace_of(lambda: (emit_send(0, 1, 8, 0, "t"),
                              emit_recv(1, 0, 8, 0, "t")))
    assert analyze_segment("step", trace.events, CASE_PATH) == []


# -- DLV003: quorum-excluded ranks ---------------------------------------------

def test_dlv003_excluded_rank_traffic_flagged():
    def body():
        emit_send(0, 2, 8, step=0, tag="dead")
        emit_recv(2, 0, 8, step=0, tag="dead")

    trace = trace_of(body)
    findings = analyze_segment("demoted", trace.events, CASE_PATH,
                               scheme="toy", world=3, excluded=(2,))
    assert "DLV003" in rules_of(findings)
    assert all("[2]" in f.message for f in findings
               if f.rule == "DLV003")


def test_dlv003_not_applied_outside_excluded_phases():
    """A crashed rank participates legitimately before/after its crash:
    only the phases listed in excluded_by_phase see the rule."""
    with capture() as trace:
        with phase_scope("full"):
            emit_send(0, 2, 8, 0, "t")
            emit_recv(2, 0, 8, 0, "t")
        with phase_scope("demoted"):
            emit_send(0, 1, 8, 0, "t")
            emit_recv(1, 0, 8, 0, "t")
    findings = analyze_trace_liveness(
        trace, CASE_PATH, world=3, excluded_by_phase={"demoted": (2,)})
    assert "DLV003" not in rules_of(findings)


# -- DLV004: interleaving exploration ------------------------------------------

def test_explorer_reaches_the_deadlock():
    trace = trace_of(cyclic_deadlock)
    findings = explore_segment("step", trace.events, CASE_PATH)
    assert rules_of(findings) == {"DLV004"}
    assert any("deadlocks" in f.message for f in findings)


def test_explorer_budget_exhaustion_is_reported_not_swallowed():
    # a real scheme trace needs dozens of transitions; a budget of one
    # cannot certify it and must say so
    trace, _ = trace_case(SchemeCase("sra", 3))
    findings = explore_segment("verify", trace.events, CASE_PATH, budget=1)
    assert rules_of(findings) == {"DLV004"}
    assert any("budget" in f.message for f in findings)


def test_duplicate_keys_branch_clean_traces_do_not():
    """Two same-key sends racing two same-key recvs genuinely branch
    (send-send-recv-recv vs send-recv-send-recv); unique-key schedules
    collapse to a single Mazurkiewicz trace."""
    def duplicated():
        emit_send(0, 1, 8, 0, "k")
        emit_send(0, 1, 8, 0, "k")
        emit_recv(1, 0, 8, 0, "k")
        emit_recv(1, 0, 8, 0, "k")

    programs = build_programs(trace_of(duplicated).events)
    result = explore(programs)
    assert result.interleavings == 2
    assert result.deadlock_free and result.conserved
    assert interleaving_bound(programs) == 6


@pytest.mark.parametrize("scheme", ["ring", "tree"])
def test_dpor_count_is_a_sliver_of_the_factorial_bound(scheme):
    trace, _ = trace_case(SchemeCase(scheme, 4))
    programs = build_programs(trace.events)
    result = explore(programs)
    assert result.deadlock_free and result.conserved
    bound = interleaving_bound(programs)
    # unique match keys: one representative interleaving suffices, out
    # of an astronomically larger naive schedule space (sleep sets
    # still *fire* transitions into branches before cutting them, so
    # compare work done, not just completions)
    assert result.interleavings == 1
    assert bound > 10 ** 5                     # tree ~2e5, ring ~1e25
    assert result.transitions < 10_000
    assert result.transitions * 20 < bound
    assert result.sleep_pruned > 0


def test_explored_residue_counts_are_conserved():
    trace, _ = trace_case(SchemeCase("sra", 3))
    result = explore(build_programs(trace.events))
    assert result.conserved
    assert result.residues == [()]  # every send consumed, all orders


# -- DLV005: bounded wait + carry drains ---------------------------------------

def test_fair_schedule_completes_within_bound_for_real_schemes():
    trace, _ = trace_case(SchemeCase("ring", 4))
    for label, events in phase_segments(trace):
        programs = build_programs(events)
        result = fair_schedule(programs)
        assert result.completed
        assert result.max_wait <= result.bound(4)
    assert fair_segment("step", trace.events, CASE_PATH, world=4) == []


def test_dlv005_convoy_wait_beyond_bound_flagged():
    """A serial relay across many ranks with *short* programs: the last
    hop's wait grows with the chain length, which no single program's
    length (and no small world size) can explain — the convoy shape the
    bound is designed to catch."""
    def relay(links=30):
        emit_send(0, 1, 8, 0, "chain0")
        for i in range(1, links):
            emit_recv(i, i - 1, 8, 0, f"chain{i - 1}")
            emit_send(i, i + 1, 8, 0, f"chain{i}")
        emit_recv(links, links - 1, 8, 0, f"chain{links - 1}")

    findings = fair_segment("step", trace_of(relay).events, CASE_PATH,
                            world=2)
    assert rules_of(findings) == {"DLV005"}
    assert any("fair scheduler rounds" in f.message for f in findings)


def test_dlv005_undrained_carries_flagged():
    trace = trace_of(lambda: (emit_send(0, 1, 8, 0, "t"),
                              emit_recv(1, 0, 8, 0, "t")))
    findings = analyze_trace_liveness(trace, CASE_PATH, scheme="partial",
                                      world=2, undrained_carries=True)
    assert "DLV005" in rules_of(findings)
    assert any("stranded" in f.message for f in findings)


def test_partial_drain_phase_empties_carries():
    (case,) = [c for c in liveness_cases((3,))
               if c.scheme == "partial" and c.campaign == "none"]
    _, aux = trace_liveness_case(case)
    assert aux.undrained_carries is False
    assert "drain" in aux.phases


# -- DLV006: blocking-call AST pass --------------------------------------------

def _lint(src, path="src/repro/collectives/fake.py"):
    return lint_blocking_source(textwrap.dedent(src), path)


def test_dlv006_emit_without_deliver_chunk_flagged():
    findings = _lint("""
        def rogue_broadcast(wire, peers):
            for peer in peers:
                emit_send(0, peer, wire.nbytes, step=0, tag="b")
                emit_recv(peer, 0, wire.nbytes, step=0, tag="b")
    """)
    assert rules_of(findings) == {"DLV006"}
    (finding,) = findings
    assert "deliver_chunk" in finding.message
    assert finding.snippet.startswith("def rogue_broadcast")


def test_dlv006_emit_with_deliver_chunk_is_clean():
    findings = _lint("""
        def audited_broadcast(wire, stats, peers):
            for peer in peers:
                emit_send(0, peer, wire.nbytes, step=0, tag="b")
                deliver_chunk(wire, stats, 0, peer, step=0, tag="b")
                emit_recv(peer, 0, wire.nbytes, step=0, tag="b")
    """)
    assert findings == []


def test_dlv006_raw_blocking_primitives_flagged():
    findings = _lint("""
        import time

        def spin(lock, cond):
            time.sleep(0.1)
            lock.acquire()
            cond.wait_for(lambda: True)
    """)
    assert rules_of(findings) == {"DLV006"}
    assert len(findings) == 3
    assert all("bypasses" in f.message for f in findings)


def test_dlv006_exemptions():
    # the trace module defines the hooks; "deliver" functions and
    # emit_* helpers ARE the audited path
    assert _lint("""
        def emit_send(src, dst):
            emit_send(src, dst)
    """, path="src/repro/collectives/trace.py") == []
    assert _lint("""
        def deliver(self, wire):
            emit_send(0, 1, wire.nbytes, step=0, tag="d")
            emit_recv(1, 0, wire.nbytes, step=0, tag="d")
    """) == []
    assert _lint("""
        def emit_heartbeat(rank):
            emit_send(rank, 0, 1, step=0, tag="hb")
    """) == []


def test_dlv006_in_tree_surface_is_clean():
    assert lint_blocking() == []


# -- phase segmentation --------------------------------------------------------

def test_phase_segments_keep_outermost_spans_and_gaps():
    with capture() as trace:
        emit_send(0, 1, 8, 0, "pre")
        with phase_scope("outer"):
            emit_send(0, 1, 8, 0, "a")
            with phase_scope("inner"):
                emit_send(0, 1, 8, 0, "b")
        emit_send(0, 1, 8, 0, "post")
    segments = phase_segments(trace)
    labels = [label for label, _ in segments]
    assert labels == ["events[0:1]", "outer", "events[3:4]"]
    assert [len(events) for _, events in segments] == [1, 2, 1]


def test_phase_separation_prevents_cross_call_aliasing():
    """Two sequential calls reuse identical match keys; without phase
    barriers the second call's recv could consume the first call's
    send.  Segmented, each phase balances independently."""
    def one_call():
        emit_send(0, 1, 8, 0, "t")
        emit_recv(1, 0, 8, 0, "t")

    with capture() as trace:
        with phase_scope("call0"):
            one_call()
        with phase_scope("call1"):
            one_call()
    findings = analyze_trace_liveness(trace, CASE_PATH, world=2)
    assert findings == []
    assert len(phase_segments(trace)) == 2


# -- the battery ---------------------------------------------------------------

def test_battery_covers_every_scheme_world_campaign_cell():
    cases = liveness_cases()
    assert len(cases) == 7 * 3 * 4
    assert {c.scheme for c in cases} == {
        "allgather", "hier", "partial", "ps", "ring", "sra", "tree"}
    assert {c.world for c in cases} == {2, 3, 4}
    assert {c.campaign for c in cases} == set(LIVENESS_CAMPAIGNS)
    for case in cases:
        if case.campaign == "crash-rejoin":
            assert case.excluded, case.path


def test_crash_rejoin_cases_record_demoted_exclusions():
    case = [c for c in liveness_cases((4,))
            if c.scheme == "ring" and c.campaign == "crash-rejoin"][0]
    trace, aux = trace_liveness_case(case)
    assert aux.phase_excluded["demoted"] == case.excluded
    assert aux.phases == ["full", "demoted", "rejoined"]
    # the demoted phase genuinely avoids the dead rank
    assert analyze_trace_liveness(
        trace, case.path, scheme=case.scheme, world=case.world,
        excluded_by_phase=aux.phase_excluded) == []


def test_full_battery_certifies_deadlock_free():
    assert verify_liveness() == []


def test_dlv_rules_table_is_complete():
    assert sorted(DLV_RULES) == [f"DLV00{i}" for i in range(1, 7)]
    assert all(DLV_RULES[rule] for rule in DLV_RULES)


def test_ops_describe_and_accessors():
    op = Op("send", (0, 1, 2, 8, "t"))
    assert op.src == 0 and op.dst == 1 and op.tag == "t"
    assert "0->1" in op.describe()

"""Chrome/Perfetto trace export from the timed network (satellite of
the fault-injection PR: the export path is how chaos campaigns get
visualised, so it needs real coverage)."""

import json

from repro.cluster import Network, nvlink_mesh
from repro.cluster.network import TransferRecord, export_chrome_trace


def _traced_network(transfers=3):
    net = Network(nvlink_mesh(4))
    net.enable_trace()
    t = 0.0
    for i in range(transfers):
        t = net.transfer(i % 4, (i + 1) % 4, 1 << 20, t)
    return net


def test_event_count_matches_trace(tmp_path):
    net = _traced_network(transfers=5)
    path = tmp_path / "trace.json"
    count = export_chrome_trace(net, str(path))
    assert count == len(net.trace) == 5
    payload = json.loads(path.read_text())
    assert len(payload["traceEvents"]) == 5


def test_round_trips_through_json_load(tmp_path):
    net = _traced_network()
    path = tmp_path / "trace.json"
    export_chrome_trace(net, str(path))
    with open(path) as handle:
        payload = json.load(handle)
    assert payload["displayTimeUnit"] == "ms"
    for event in payload["traceEvents"]:
        assert event["ph"] == "X"
        assert event["cat"] == "transfer"
        assert event["pid"] == 0
        assert set(event["args"]) == {"bytes", "dst"}


def test_timestamps_are_microseconds(tmp_path):
    net = _traced_network()
    path = tmp_path / "trace.json"
    export_chrome_trace(net, str(path))
    payload = json.loads(path.read_text())
    for event, record in zip(payload["traceEvents"], net.trace):
        assert event["ts"] == record.start * 1e6
        assert event["tid"] == record.src
        expected = (record.end - record.start) * 1e6
        assert event["dur"] == max(0.01, expected)


def test_zero_duration_events_get_visible_floor(tmp_path):
    net = Network(nvlink_mesh(4))
    net.enable_trace()
    # a degenerate record (start == end) must still render: Chrome drops
    # zero-width complete events, so the exporter floors dur at 0.01 us.
    net.trace.append(TransferRecord(0, 1, 0, 1.0, 1.0))
    path = tmp_path / "trace.json"
    assert export_chrome_trace(net, str(path)) == 1
    payload = json.loads(path.read_text())
    assert payload["traceEvents"][0]["dur"] == 0.01
    assert payload["traceEvents"][0]["ts"] == 1e6


def test_trace_disabled_exports_empty(tmp_path):
    net = Network(nvlink_mesh(4))
    net.transfer(0, 1, 1 << 20, 0.0)   # tracing off: nothing recorded
    path = tmp_path / "trace.json"
    assert export_chrome_trace(net, str(path)) == 0
    assert json.loads(path.read_text())["traceEvents"] == []


def test_job_tagged_records_get_per_job_lanes(tmp_path):
    net = Network(nvlink_mesh(4))
    net.enable_trace()
    net.transfer(0, 1, 1 << 20, 0.0, job=1)
    net.transfer(1, 2, 1 << 20, 0.0, job=2)
    net.transfer(2, 3, 1 << 20, 0.0)          # untagged stays on pid 0
    path = tmp_path / "trace.json"
    assert export_chrome_trace(net, str(path)) == 3
    payload = json.loads(path.read_text())

    meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
    assert [(e["pid"], e["args"]["name"]) for e in meta] == \
        [(1, "job 1"), (2, "job 2")]
    transfers = [e for e in payload["traceEvents"] if e["ph"] == "X"]
    assert [e["pid"] for e in transfers] == [1, 2, 0]
    # within a job lane the source GPU remains the thread row
    assert [e["tid"] for e in transfers] == [0, 1, 2]


def test_untagged_trace_output_is_unchanged_by_job_lanes(tmp_path):
    # single-job (untagged) exports must stay byte-compatible with the
    # historical format: no metadata events, everything on pid 0
    net = _traced_network(transfers=4)
    path = tmp_path / "trace.json"
    export_chrome_trace(net, str(path))
    payload = json.loads(path.read_text())
    assert all(e["ph"] == "X" and e["pid"] == 0
               for e in payload["traceEvents"])
    assert len(payload["traceEvents"]) == 4

"""Numeric gradient checks and behavioural tests for every layer."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Embedding,
    Flatten,
    GELU,
    GlobalAvgPool2d,
    LayerNorm,
    Linear,
    MaxPool2d,
    ReLU,
    Residual,
    Sequential,
)


def check_param_gradient(layer, x, param_name, idx, eps=1e-3, rtol=5e-2):
    """Compare analytic parameter gradient against central differences."""
    rng = np.random.default_rng(0)
    out = layer(x)
    upstream = rng.normal(size=out.shape).astype(np.float32)
    layer.zero_grad()
    layer(x)
    layer.backward(upstream)
    param = dict(layer.named_parameters())[param_name]
    analytic = param.grad[idx]

    orig = param.data[idx]
    param.data[idx] = orig + eps
    hi = float(np.sum(layer(x) * upstream))
    param.data[idx] = orig - eps
    lo = float(np.sum(layer(x) * upstream))
    param.data[idx] = orig
    numeric = (hi - lo) / (2 * eps)
    assert analytic == pytest.approx(numeric, rel=rtol, abs=1e-3)


def check_input_gradient(layer, x, eps=1e-3, rtol=5e-2, samples=5):
    rng = np.random.default_rng(1)
    out = layer(x)
    upstream = rng.normal(size=out.shape).astype(np.float32)
    layer(x)
    grad_in = layer.backward(upstream)
    flat = x.ravel()
    indices = rng.choice(flat.size, size=min(samples, flat.size),
                         replace=False)
    for i in indices:
        orig = flat[i]
        flat[i] = orig + eps
        hi = float(np.sum(layer(x) * upstream))
        flat[i] = orig - eps
        lo = float(np.sum(layer(x) * upstream))
        flat[i] = orig
        numeric = (hi - lo) / (2 * eps)
        assert grad_in.ravel()[i] == pytest.approx(numeric, rel=rtol, abs=2e-3)


def test_linear_forward_matches_matmul():
    rng = np.random.default_rng(2)
    layer = Linear(6, 4, rng=rng)
    x = rng.normal(size=(3, 6)).astype(np.float32)
    expected = x @ layer.weight.data.T + layer.bias.data
    np.testing.assert_allclose(layer(x), expected, rtol=1e-6)


def test_linear_gradients():
    rng = np.random.default_rng(3)
    layer = Linear(5, 4, rng=rng)
    x = rng.normal(size=(6, 5)).astype(np.float32)
    check_param_gradient(layer, x, "weight", (1, 2))
    check_param_gradient(layer, x, "bias", (0,))
    check_input_gradient(layer, x)


def test_linear_3d_input():
    rng = np.random.default_rng(4)
    layer = Linear(5, 7, rng=rng)
    x = rng.normal(size=(2, 3, 5)).astype(np.float32)
    out = layer(x)
    assert out.shape == (2, 3, 7)
    grad_in = layer.backward(np.ones_like(out))
    assert grad_in.shape == x.shape
    assert layer.weight.grad.shape == (7, 5)


def test_embedding_lookup_and_grad():
    rng = np.random.default_rng(5)
    layer = Embedding(10, 4, rng=rng)
    ids = np.array([[1, 3], [3, 9]])
    out = layer(ids)
    np.testing.assert_array_equal(out[0, 0], layer.weight.data[1])
    layer.zero_grad()
    layer(ids)
    layer.backward(np.ones((2, 2, 4), dtype=np.float32))
    # token 3 appears twice -> gradient accumulates
    np.testing.assert_allclose(layer.weight.grad[3], 2 * np.ones(4))
    np.testing.assert_allclose(layer.weight.grad[0], np.zeros(4))


def test_layernorm_output_statistics():
    rng = np.random.default_rng(6)
    layer = LayerNorm(32)
    x = rng.normal(loc=5.0, scale=3.0, size=(4, 32)).astype(np.float32)
    out = layer(x)
    np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-5)
    np.testing.assert_allclose(out.std(axis=-1), np.ones(4), atol=1e-2)


def test_layernorm_gradients():
    rng = np.random.default_rng(7)
    layer = LayerNorm(8)
    layer.weight.data = rng.normal(size=8).astype(np.float32)
    x = rng.normal(size=(3, 8)).astype(np.float32)
    check_param_gradient(layer, x, "weight", (2,))
    check_param_gradient(layer, x, "bias", (5,))
    check_input_gradient(layer, x)


def test_batchnorm1d_train_and_eval_modes():
    rng = np.random.default_rng(8)
    layer = BatchNorm1d(4)
    x = rng.normal(loc=2.0, size=(64, 4)).astype(np.float32)
    out = layer(x)
    np.testing.assert_allclose(out.mean(axis=0), np.zeros(4), atol=1e-5)
    # eval mode uses running stats (updated toward batch stats)
    layer.eval()
    out_eval = layer(x)
    assert not np.allclose(out_eval, out, atol=1e-3)


def test_batchnorm2d_gradients():
    rng = np.random.default_rng(9)
    layer = BatchNorm2d(3)
    x = rng.normal(size=(4, 3, 2, 2)).astype(np.float32)
    check_param_gradient(layer, x, "weight", (1,))
    check_input_gradient(layer, x)


def test_dropout_train_scales_and_eval_identity():
    rng = np.random.default_rng(10)
    layer = Dropout(0.5, rng=rng)
    x = np.ones((2000,), dtype=np.float32)
    out = layer(x)
    kept = out[out > 0]
    np.testing.assert_allclose(kept, 2.0 * np.ones_like(kept))
    assert 0.4 < (out > 0).mean() < 0.6
    layer.eval()
    np.testing.assert_array_equal(layer(x), x)


def test_dropout_backward_uses_same_mask():
    layer = Dropout(0.5, rng=np.random.default_rng(11))
    x = np.ones((100,), dtype=np.float32)
    out = layer(x)
    grad = layer.backward(np.ones_like(x))
    np.testing.assert_array_equal(grad, out)


def test_dropout_rejects_invalid_probability():
    with pytest.raises(ValueError):
        Dropout(1.0)


def test_conv2d_matches_direct_convolution():
    rng = np.random.default_rng(12)
    layer = Conv2d(2, 3, 3, padding=1, rng=rng)
    x = rng.normal(size=(1, 2, 5, 5)).astype(np.float32)
    out = layer(x)
    assert out.shape == (1, 3, 5, 5)
    # check one output element by hand
    padded = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
    patch = padded[0, :, 2:5, 2:5]
    expected = float(np.sum(patch * layer.weight.data[1]) + layer.bias.data[1])
    assert out[0, 1, 2, 2] == pytest.approx(expected, rel=1e-4)


def test_conv2d_gradients():
    rng = np.random.default_rng(13)
    layer = Conv2d(2, 2, 3, padding=1, rng=rng)
    x = rng.normal(size=(2, 2, 4, 4)).astype(np.float32)
    check_param_gradient(layer, x, "weight", (0, 1, 1, 1))
    check_param_gradient(layer, x, "bias", (1,))
    check_input_gradient(layer, x)


def test_conv2d_stride():
    rng = np.random.default_rng(14)
    layer = Conv2d(1, 1, 2, stride=2, rng=rng)
    x = rng.normal(size=(1, 1, 6, 6)).astype(np.float32)
    assert layer(x).shape == (1, 1, 3, 3)


def test_maxpool_forward_and_backward():
    x = np.array([[[[1, 2, 5, 6],
                    [3, 4, 7, 8],
                    [1, 1, 0, 0],
                    [1, 9, 0, 0]]]], dtype=np.float32)
    layer = MaxPool2d(2)
    out = layer(x)
    np.testing.assert_array_equal(out[0, 0], [[4, 8], [9, 0]])
    grad = layer.backward(np.ones_like(out))
    # gradient routed to the max positions only
    assert grad[0, 0, 1, 1] == 1.0 and grad[0, 0, 0, 0] == 0.0
    assert grad[0, 0, 3, 1] == 1.0


def test_maxpool_rejects_indivisible_input():
    with pytest.raises(ValueError):
        MaxPool2d(2)(np.zeros((1, 1, 5, 5), dtype=np.float32))


def test_global_avg_pool_roundtrip():
    rng = np.random.default_rng(15)
    layer = GlobalAvgPool2d()
    x = rng.normal(size=(2, 3, 4, 4)).astype(np.float32)
    out = layer(x)
    np.testing.assert_allclose(out, x.mean(axis=(2, 3)), rtol=1e-6)
    grad = layer.backward(np.ones_like(out))
    np.testing.assert_allclose(grad, np.full_like(x, 1 / 16.0))


def test_flatten_roundtrip():
    layer = Flatten()
    x = np.arange(24, dtype=np.float32).reshape(2, 3, 4)
    out = layer(x)
    assert out.shape == (2, 12)
    assert layer.backward(out).shape == x.shape


def test_residual_gradient_adds_paths():
    rng = np.random.default_rng(16)
    inner = Linear(4, 4, rng=rng)
    layer = Residual(inner)
    x = rng.normal(size=(3, 4)).astype(np.float32)
    out = layer(x)
    np.testing.assert_allclose(out, x + inner(x), rtol=1e-6)
    layer(x)
    grad = layer.backward(np.ones_like(out))
    expected = np.ones_like(x) + np.ones_like(out) @ inner.weight.data
    np.testing.assert_allclose(grad, expected, rtol=1e-5)


def test_sequential_traversal_and_naming():
    rng = np.random.default_rng(17)
    model = Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))
    names = [n for n, _ in model.named_parameters()]
    assert names == ["0.weight", "0.bias", "2.weight", "2.bias"]
    assert len(model) == 3
    assert isinstance(model[1], ReLU)


def test_gelu_module_backward_matches_function():
    rng = np.random.default_rng(18)
    layer = GELU()
    x = rng.normal(size=(5, 5)).astype(np.float32)
    check_input_gradient(layer, x)

"""Tests for learning-rate schedules."""

import numpy as np
import pytest

from repro.nn import Parameter, SGD
from repro.nn.schedulers import ConstantLR, CosineWarmup, StepDecay


def make_opt(lr=1.0):
    return SGD([Parameter(np.zeros(2, dtype=np.float32))], lr=lr)


def test_constant_lr():
    sched = ConstantLR(make_opt(0.5))
    for _ in range(5):
        assert sched.step() == 0.5


def test_cosine_warmup_ramps_linearly():
    sched = CosineWarmup(make_opt(1.0), total_steps=100, warmup_steps=10)
    lrs = [sched.step() for _ in range(10)]
    np.testing.assert_allclose(lrs, np.arange(1, 11) / 10.0, rtol=1e-6)


def test_cosine_decays_to_min():
    opt = make_opt(1.0)
    sched = CosineWarmup(opt, total_steps=50, warmup_steps=0, min_lr=0.1)
    lrs = [sched.step() for _ in range(50)]
    assert lrs[0] > lrs[25] > lrs[-1]
    assert lrs[-1] == pytest.approx(0.1, abs=1e-2)
    # monotone decreasing after warmup
    assert all(a >= b for a, b in zip(lrs, lrs[1:]))


def test_cosine_updates_optimizer():
    opt = make_opt(1.0)
    sched = CosineWarmup(opt, total_steps=10, warmup_steps=2)
    sched.step()
    assert opt.lr == pytest.approx(0.5)


def test_cosine_validation():
    with pytest.raises(ValueError):
        CosineWarmup(make_opt(), total_steps=0)
    with pytest.raises(ValueError):
        CosineWarmup(make_opt(), total_steps=10, warmup_steps=10)


def test_step_decay_milestones():
    sched = StepDecay(make_opt(1.0), milestones=[3, 6], gamma=0.1)
    lrs = [sched.step() for _ in range(8)]
    assert lrs[0] == 1.0 and lrs[1] == 1.0
    assert lrs[2] == pytest.approx(0.1)   # step 3
    assert lrs[5] == pytest.approx(0.01)  # step 6
    assert lrs[-1] == pytest.approx(0.01)


def test_step_decay_validation():
    with pytest.raises(ValueError):
        StepDecay(make_opt(), milestones=[1], gamma=0.0)


def test_schedule_beyond_horizon_clamps():
    sched = CosineWarmup(make_opt(1.0), total_steps=5, warmup_steps=0)
    for _ in range(10):
        lr = sched.step()
    assert lr == pytest.approx(0.0, abs=1e-9)

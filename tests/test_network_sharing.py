"""Sharing one network between jobs: tagging, throttles, routing.

The fleet scheduler runs many jobs on one link-resource pool; these
tests pin the network-level machinery it relies on — per-job busy
accounting, per-job trace clearing (a drained job must not wipe a
neighbor's accounting), psim-style throttle rates, adaptive route
selection, and the binned link-load timelines.
"""

import pytest

from repro.cluster import Network, make_cluster, nvlink_mesh

MB = 1 << 20


def test_transfers_attribute_busy_time_per_job():
    net = Network(make_cluster("rtx3090-8x", 2))
    net.transfer(0, 1, 4 * MB, 0.0, job=1)
    net.transfer(2, 3, 4 * MB, 0.0, job=2)
    net.transfer(4, 5, 4 * MB, 0.0)          # untagged single-job style
    seconds1 = net.job_link_seconds(1)
    seconds2 = net.job_link_seconds(2)
    assert seconds1 and seconds2
    assert sum(seconds1.values()) > 0
    # attribution is disjoint: job 1's seconds never count for job 2
    assert not set(seconds1) & set(seconds2) or all(
        seconds1[k] > 0 and seconds2[k] > 0
        for k in set(seconds1) & set(seconds2))
    assert net.job_link_seconds(99) == {}


def test_clear_trace_is_per_job():
    net = Network(nvlink_mesh(4))
    net.enable_trace()
    net.transfer(0, 1, MB, 0.0, job=1)
    net.transfer(1, 2, MB, 0.0, job=2)
    net.transfer(2, 3, MB, 0.0)
    assert len(net.trace) == 3
    horizon = net.pool.get("nvlink.g0g1.up").busy_until

    net.clear_trace(job=1)   # drain one job...
    assert [r.job for r in net.trace] == [2, None]
    # ...without touching the pool: other jobs' timelines survive
    assert net.pool.get("nvlink.g0g1.up").busy_until == horizon

    net.clear_trace()        # and the full clear still clears everything
    assert net.trace == []


def test_reset_clears_pool_and_trace():
    net = Network(nvlink_mesh(4))
    net.enable_trace()
    net.transfer(0, 1, MB, 0.0, job=1)
    net.reset()
    assert net.trace == []
    assert net.pool.get("nvlink.g0g1.up").busy_until == 0.0
    assert net.job_link_seconds(1) == {}


def test_job_throttle_scales_service_time():
    topo = make_cluster("rtx3090-8x", 2)
    free_end = Network(topo).transfer(0, 8, 16 * MB, 0.0, job=1)

    net = Network(topo)
    net.set_job_throttle(1, 0.5)
    assert net.job_throttle(1) == 0.5
    assert net.job_throttle(2) == 1.0    # others unaffected
    throttled_end = net.transfer(0, 8, 16 * MB, 0.0, job=1)
    assert throttled_end > free_end      # half the bandwidth, longer wire time

    net.clear_job_throttle(1)
    assert net.job_throttle(1) == 1.0
    with pytest.raises(ValueError):
        net.set_job_throttle(1, 0.0)
    with pytest.raises(ValueError):
        net.set_job_throttle(1, 1.5)


def test_adaptive_routing_detours_around_congestion():
    topo = nvlink_mesh(4)
    assert topo.alt_routes   # the ring registers long-way detours

    static = Network(topo, route_policy="static")
    adaptive = Network(topo, route_policy="adaptive")
    for net in (static, adaptive):
        # hog the primary 0->1 link so the ring's long way looks better
        net.transfer(0, 1, 256 * MB, 0.0, job=1)
    t_static = static.transfer(0, 1, MB, 0.0, job=2)
    t_adaptive = adaptive.transfer(0, 1, MB, 0.0, job=2)
    assert t_adaptive < t_static


def test_adaptive_routing_keeps_primary_on_ties():
    topo = nvlink_mesh(4)
    # empty network: primary route is (weakly) fastest, must be kept, so
    # static and adaptive stay byte-for-byte interchangeable when idle
    t_static = Network(topo, route_policy="static").transfer(0, 1, MB, 0.0)
    t_adaptive = Network(topo, route_policy="adaptive").transfer(0, 1, MB, 0.0)
    assert t_adaptive == t_static


def test_route_policy_validated():
    with pytest.raises(ValueError):
        Network(nvlink_mesh(4), route_policy="quantum")


def test_link_load_timelines_bin_busy_seconds():
    net = Network(nvlink_mesh(4))
    net.enable_link_loads(bin_width=0.001)
    assert net.load_bin_width == 0.001
    net.transfer(0, 1, 64 * MB, 0.0, job=1)
    loads = net.link_loads()
    assert loads
    for bins in loads.values():
        # each bin holds at most its own width of busy time
        assert all(0 < v <= 0.001 + 1e-12 for v in bins.values())
    with pytest.raises(ValueError):
        net.enable_link_loads(bin_width=0.0)


def test_kernels_are_job_tagged_too():
    net = Network(nvlink_mesh(4))
    net.run_kernel(0, "compress", 0.5, 0.0, job=3)
    assert net.job_link_seconds(3) == {"gpu0.compress": 0.5}

"""Tests for the timed collective schedules."""

import pytest

from repro.cluster import get_machine, make_cluster, Network
from repro.collectives import time_allreduce
from repro.compression import CompressionSpec

DENSE = CompressionSpec("none")
Q4 = CompressionSpec("qsgd", bits=4, bucket_size=128)


def fresh(machine="rtx3090-8x", backend="shm"):
    return get_machine(machine).network(backend)


def test_end_times_after_ready():
    net = fresh()
    timing = time_allreduce(net, list(range(8)), 1 << 20, DENSE, "sra",
                            ready=0.5)
    assert all(t > 0.5 for t in timing.end_times)
    assert len(timing.end_times) == 8


def test_compression_speeds_up_commodity_allreduce():
    for scheme in ["sra", "ring", "tree"]:
        dense = time_allreduce(fresh(), list(range(8)), 50_000_000, DENSE,
                               scheme).end
        compressed = time_allreduce(fresh(), list(range(8)), 50_000_000, Q4,
                                    scheme).end
        assert compressed < dense / 2, scheme


def test_sra_beats_ring_and_tree_on_commodity_dense():
    """Figure 10: SRA is the best reduction scheme on the 8x3090 box."""
    numel = 187_500_000  # Transformer-XL
    times = {s: time_allreduce(fresh(), list(range(8)), numel, DENSE, s).end
             for s in ["sra", "ring", "tree", "allgather"]}
    assert times["sra"] < times["ring"]
    assert times["sra"] < times["tree"]
    assert times["sra"] < times["allgather"]


def test_quantized_sra_close_to_best_on_commodity():
    numel = 187_500_000
    times = {s: time_allreduce(fresh(), list(range(8)), numel, Q4, s,
                               chunk_streams=4).end
             for s in ["sra", "ring", "tree", "allgather"]}
    assert times["sra"] <= min(times.values()) * 1.1
    assert times["tree"] > times["sra"]
    assert times["allgather"] > times["sra"]


def test_ring_is_bandwidth_optimal_on_nvlink():
    """NCCL's choice: on the DGX ring fabric, ring-allreduce wins."""
    net_kwargs = dict(machine="dgx1", backend="nccl")
    numel = 25_000_000
    ring = time_allreduce(fresh(**net_kwargs), list(range(8)), numel, DENSE,
                          "ring").end
    tree = time_allreduce(fresh(**net_kwargs), list(range(8)), numel, DENSE,
                          "tree").end
    assert ring < tree


def test_commodity_allreduce_bandwidth_matches_paper():
    """Section 6.1 measurement: ~1 GB/s all-reduce bandwidth on the 8x3090
    machine with NCCL, despite 13-16 GB/s point-to-point links."""
    numel = 187_500_000
    timing = time_allreduce(fresh(backend="nccl"), list(range(8)), numel,
                            DENSE, "ring")
    algo_bw = numel * 4 / timing.end
    assert 0.5e9 < algo_bw < 2e9


def test_dgx_allreduce_bandwidth_matches_paper():
    """Table 2: DGX-1 all-reduce bandwidth reaches tens of GB/s."""
    numel = 187_500_000
    timing = time_allreduce(fresh("dgx1", "nccl"), list(range(8)), numel,
                            DENSE, "ring")
    algo_bw = numel * 4 / timing.end
    assert algo_bw > 20e9


def test_wire_bytes_accounted():
    numel = 1 << 20
    timing = time_allreduce(fresh(), list(range(8)), numel, Q4, "sra")
    # SRA: each rank sends 7 foreign chunks + 7 broadcast sends per owner
    chunk = numel // 8
    expected_per_chunk = Q4.wire_bytes(chunk)
    assert timing.wire_bytes == pytest.approx(
        expected_per_chunk * (7 * 8 + 7 * 8), rel=0.01
    )


def test_kernel_calls_counted_only_when_compressing():
    dense = time_allreduce(fresh(), list(range(4)), 1 << 20, DENSE, "sra")
    q = time_allreduce(fresh(), list(range(4)), 1 << 20, Q4, "sra")
    fake = time_allreduce(fresh(), list(range(4)), 1 << 20,
                          CompressionSpec("fake", ratio=8), "sra")
    assert dense.kernel_calls == 0
    assert q.kernel_calls > 0
    assert fake.kernel_calls == 0  # fake compression runs no kernel


def test_kernel_factor_slows_quantized_collective():
    base = time_allreduce(fresh(), list(range(8)), 50_000_000, Q4, "ring",
                          kernel_factor=1.0).end
    slow = time_allreduce(fresh(), list(range(8)), 50_000_000, Q4, "ring",
                          kernel_factor=4.0).end
    assert slow > base


def test_chunk_streams_speed_up_sra():
    """The paper's +5% from assigning SRA chunks to separate streams."""
    numel = 187_500_000
    serial = time_allreduce(fresh(), list(range(8)), numel, Q4, "sra",
                            chunk_streams=1).end
    parallel = time_allreduce(fresh(), list(range(8)), numel, Q4, "sra",
                              chunk_streams=4).end
    assert parallel < serial


def test_single_rank_is_free():
    timing = time_allreduce(fresh(), [0], 1 << 20, Q4, "sra", ready=1.0)
    assert timing.end == 1.0
    assert timing.wire_bytes == 0


def test_ready_list_respected():
    ready = [0.0, 0.0, 0.0, 1.0]
    timing = time_allreduce(fresh(), [0, 1, 2, 3], 1 << 16, DENSE, "sra",
                            ready=ready)
    assert timing.end > 1.0


def test_ready_length_validation():
    with pytest.raises(ValueError):
        time_allreduce(fresh(), [0, 1], 100, DENSE, "sra", ready=[0.0])


def test_mpi_backend_slower_than_shm():
    """Figure 11: SHM > NCCL > MPI for the CGX engine."""
    numel = 87_000_000  # ViT
    times = {}
    for backend in ["shm", "nccl", "mpi"]:
        net = fresh(backend=backend)
        times[backend] = time_allreduce(net, list(range(8)), numel, Q4,
                                        "sra").end
    assert times["shm"] < times["nccl"] < times["mpi"]


def test_hier_scheme_beats_flat_on_multinode():
    """Hierarchical reduction pays off across slow inter-node links."""
    cluster = make_cluster("genesis-4x3090", 4)
    numel = 187_500_000
    flat = time_allreduce(Network(cluster, "nccl"), list(range(16)), numel,
                          Q4, "sra").end
    hier = time_allreduce(Network(cluster, "nccl"), list(range(16)), numel,
                          Q4, "hier").end
    assert hier < flat


def test_hier_on_single_node_equals_sra():
    net_a = fresh()
    net_b = fresh()
    sra = time_allreduce(net_a, list(range(8)), 1 << 22, Q4, "sra").end
    hier = time_allreduce(net_b, list(range(8)), 1 << 22, Q4, "hier").end
    assert hier == pytest.approx(sra)

"""Cross-compressor property tests and metrics tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compression import (
    CompressionSpec,
    make_compressor,
    measure_error,
    model_wire_bytes,
    kernel_seconds,
    relative_error,
)

ALL_SPECS = [
    CompressionSpec("none"),
    CompressionSpec("fp16"),
    CompressionSpec("qsgd", bits=4, bucket_size=128),
    CompressionSpec("qsgd", bits=8, bucket_size=64),
    CompressionSpec("topk", density=0.2),
    CompressionSpec("fake", ratio=4),
]


@pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: f"{s.method}")
def test_shape_preserved(spec):
    rng = np.random.default_rng(0)
    x = rng.normal(size=(7, 11)).astype(np.float32)
    comp = make_compressor(spec)
    out = comp.roundtrip(x, rng)
    assert out.shape == x.shape
    assert out.dtype == np.float32


@pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: f"{s.method}")
def test_wire_bytes_positive_and_bounded(spec):
    n = 10_000
    wire = spec.wire_bytes(n)
    assert wire > 0
    if spec.method != "none":
        assert wire <= n * 4  # never exceeds dense fp32


@pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: f"{s.method}")
def test_compressed_nbytes_matches_spec(spec):
    rng = np.random.default_rng(1)
    x = rng.normal(size=500).astype(np.float32)
    compressed = make_compressor(spec).compress(x, rng)
    assert compressed.nbytes == spec.wire_bytes(500)


def test_identity_and_fp16_errors():
    rng = np.random.default_rng(2)
    x = rng.normal(size=1000).astype(np.float32)
    assert relative_error(CompressionSpec("none"), x, rng) == 0.0
    fp16_err = relative_error(CompressionSpec("fp16"), x, rng)
    assert 0 < fp16_err < 1e-3


def test_fake_compression_error_matches_truncation():
    rng = np.random.default_rng(3)
    x = rng.normal(size=1000).astype(np.float32)
    stats = measure_error(CompressionSpec("fake", ratio=10), x, rng)
    expected = float(np.linalg.norm(x[100:]))
    assert stats.error_norm == pytest.approx(expected, rel=1e-5)


def test_decompress_is_deterministic():
    """Compression may be stochastic, but decompressing a fixed payload
    must always give the same values (all ranks must agree)."""
    rng = np.random.default_rng(4)
    x = rng.normal(size=300).astype(np.float32)
    comp = make_compressor(CompressionSpec("qsgd", bits=4, bucket_size=64))
    compressed = comp.compress(x, rng)
    a = comp.decompress(compressed)
    b = comp.decompress(compressed.copy())
    np.testing.assert_array_equal(a, b)


@given(n=st.integers(1, 3000))
@settings(max_examples=50, deadline=None)
def test_qsgd_wire_bytes_formula(n):
    spec = CompressionSpec("qsgd", bits=4, bucket_size=128)
    buckets = -(-n // 128)
    expected = -(-(n * 4) // 8) + buckets * 4
    assert spec.wire_bytes(n) == expected


def test_grace_int8_wire_format():
    packed = CompressionSpec("qsgd", bits=4, bucket_size=128)
    int8 = CompressionSpec("qsgd", bits=4, bucket_size=128,
                           wire_dtype_bits=8)
    assert int8.wire_bytes(1024) > packed.wire_bytes(1024)
    assert int8.wire_bytes(1024) == 1024 + 8 * 4


def test_model_wire_bytes_uses_overrides():
    sizes = {"a": 1000, "b": 1000}
    specs = {"a": CompressionSpec("qsgd", bits=4, bucket_size=128)}
    total = model_wire_bytes(specs, sizes)
    # b falls back to dense
    assert total == CompressionSpec("qsgd", bits=4,
                                    bucket_size=128).wire_bytes(1000) + 4000


def test_kernel_seconds_monotone_in_bytes():
    assert kernel_seconds(1 << 20) < kernel_seconds(1 << 24)
    assert kernel_seconds(0) > 0  # launch overhead floor


def test_compression_ratio_definition():
    spec = CompressionSpec("qsgd", bits=4, bucket_size=1024)
    n = 1 << 20
    assert spec.compression_ratio(n) == pytest.approx(
        n * 4 / spec.wire_bytes(n)
    )
    assert 7.0 < spec.compression_ratio(n) < 8.0


def test_unknown_method_rejected():
    with pytest.raises(ValueError):
        CompressionSpec("zstd")


def test_with_bits_copies_spec():
    spec = CompressionSpec("qsgd", bits=4, bucket_size=128)
    other = spec.with_bits(8, 512)
    assert other.bits == 8 and other.bucket_size == 512
    assert spec.bits == 4  # original untouched


def test_measure_error_stats_fields():
    rng = np.random.default_rng(5)
    x = rng.normal(size=256).astype(np.float32)
    stats = measure_error(CompressionSpec("qsgd", bits=4, bucket_size=128),
                          x, rng, name="layer0")
    assert stats.name == "layer0"
    assert stats.numel == 256
    assert stats.grad_norm == pytest.approx(float(np.linalg.norm(x)), rel=1e-5)
    assert 0 < stats.relative < 1

"""Tests for layer filters, package planning, and the engine data path."""

import numpy as np
import pytest

from repro.compression import CompressionSpec
from repro.core import (
    CGXConfig,
    CommunicationEngine,
    LayerFilter,
    LayerInfo,
)

L = LayerInfo


def layers_example():
    return [
        L("head.weight", 10_000, (100, 100)),
        L("head.bias", 100, (100,)),
        L("blocks.1.ln2.weight", 64, (64,)),
        L("blocks.1.mlp.fc1.weight", 65_536, (256, 256)),
        L("embed.weight", 1_000_000, (10_000, 100)),
        L("stem.bn1.weight", 16, (16,)),
    ]


# -- filters ------------------------------------------------------------------

def test_filter_matches_keywords_case_insensitive():
    f = LayerFilter(("bias", "bn"), 0)
    assert f.excluded(L("conv.BIAS", 10))
    assert f.excluded(L("stem.bn1.weight", 10))
    assert not f.excluded(L("conv.weight", 10))


def test_filter_min_size():
    f = LayerFilter((), min_compress_numel=100)
    assert f.excluded(L("tiny.weight", 99))
    assert not f.excluded(L("big.weight", 100))


def test_partition_preserves_order():
    f = LayerFilter(("bias", "bn", "ln"), 1000)
    compressed, filtered = f.partition(layers_example())
    assert [l.name for l in compressed] == [
        "head.weight", "blocks.1.mlp.fc1.weight", "embed.weight"]
    assert [l.name for l in filtered] == [
        "head.bias", "blocks.1.ln2.weight", "stem.bn1.weight"]


# -- planning ------------------------------------------------------------------

def test_cgx_plan_per_layer_plus_fused_filtered():
    engine = CommunicationEngine(CGXConfig.cgx_default())
    plan = engine.plan(layers_example(), mode="cgx")
    names = [p.name for p in plan]
    assert "embed.weight" in names
    assert "filtered" in names
    filtered_pkg = next(p for p in plan if p.name == "filtered")
    assert filtered_pkg.spec.method == "none"
    assert {l.name for l in filtered_pkg.layers} == {
        "head.bias", "blocks.1.ln2.weight", "stem.bn1.weight"}
    compressed = [p for p in plan if p.name != "filtered"]
    assert all(len(p.layers) == 1 for p in compressed)
    assert all(p.spec.method == "qsgd" for p in compressed)


def test_cgx_plan_respects_per_layer_overrides():
    config = CGXConfig.cgx_default()
    config.per_layer["embed.weight"] = CompressionSpec("topk", density=0.01)
    plan = CommunicationEngine(config).plan(layers_example())
    embed = next(p for p in plan if p.name == "embed.weight")
    assert embed.spec.method == "topk"


def test_fused_plan_buckets_by_bytes():
    config = CGXConfig.baseline_nccl()
    config.fusion_bytes = 300_000  # bytes
    engine = CommunicationEngine(config)
    plan = engine.plan(layers_example(), mode="fused")
    assert all(p.name.startswith("fused") for p in plan)
    # every bucket except possibly the last crosses the threshold
    for pkg in plan[:-1]:
        assert pkg.numel * 4 >= config.fusion_bytes
    total = sum(p.numel for p in plan)
    assert total == sum(l.numel for l in layers_example())


def test_unknown_plan_mode():
    with pytest.raises(ValueError):
        CommunicationEngine().plan(layers_example(), mode="magic")


def test_package_wire_bytes():
    pkg = CommunicationEngine(CGXConfig.cgx_default()).plan(
        layers_example())[0]
    assert pkg.wire_bytes() == pkg.spec.wire_bytes(pkg.numel)


# -- data path -----------------------------------------------------------------

def make_grads(world, seed=0):
    shapes = {"fc.weight": (64, 32), "fc.bias": (64,),
              "ln.weight": (32,), "embed.weight": (128, 32)}
    out = []
    for w in range(world):
        rng = np.random.default_rng(seed + w)
        out.append({name: rng.normal(size=shape).astype(np.float32)
                    for name, shape in shapes.items()})
    return out


def test_reduce_dense_equals_mean():
    engine = CommunicationEngine(
        CGXConfig(compression=CompressionSpec("none")))
    grads = make_grads(4)
    reduced, report = engine.reduce(grads, np.random.default_rng(0))
    for name in grads[0]:
        expected = np.mean([g[name] for g in grads], axis=0)
        np.testing.assert_allclose(reduced[0][name], expected, rtol=1e-4,
                                   atol=1e-5)
    assert report.dense_bytes == sum(g.size * 4 for g in grads[0].values())


def test_reduce_filtered_layers_exact_even_when_compressing():
    """bias/ln tensors must come back exactly (fp32 path)."""
    engine = CommunicationEngine(
        CGXConfig.cgx_default().with_compression(
            CompressionSpec("qsgd", bits=2, bucket_size=64)))
    grads = make_grads(4)
    reduced, _ = engine.reduce(grads, np.random.default_rng(0))
    for name in ["fc.bias", "ln.weight"]:
        expected = np.mean([g[name] for g in grads], axis=0)
        np.testing.assert_allclose(reduced[0][name], expected, rtol=1e-5,
                                   atol=1e-6)


def test_reduce_compressed_layers_approximate_but_identical():
    engine = CommunicationEngine(CGXConfig.cgx_default())
    grads = make_grads(4)
    reduced, _ = engine.reduce(grads, np.random.default_rng(0))
    name = "embed.weight"
    expected = np.mean([g[name] for g in grads], axis=0)
    rel = np.linalg.norm(reduced[0][name] - expected) / \
        np.linalg.norm(expected)
    assert 0 < rel < 0.5
    for w in range(1, 4):
        np.testing.assert_array_equal(reduced[0][name], reduced[w][name])


def test_reduce_shapes_restored():
    engine = CommunicationEngine(CGXConfig.cgx_default())
    grads = make_grads(2)
    reduced, _ = engine.reduce(grads, np.random.default_rng(0))
    for name, grad in grads[0].items():
        assert reduced[0][name].shape == grad.shape


def test_reduce_sum_mode():
    engine = CommunicationEngine(
        CGXConfig(compression=CompressionSpec("none")))
    grads = make_grads(3)
    reduced, _ = engine.reduce(grads, np.random.default_rng(0),
                               average=False)
    expected = np.sum([g["fc.weight"] for g in grads], axis=0)
    np.testing.assert_allclose(reduced[0]["fc.weight"], expected, rtol=1e-4)


def test_reduce_rejects_mismatched_names():
    grads = make_grads(2)
    del grads[1]["fc.bias"]
    with pytest.raises(ValueError):
        CommunicationEngine().reduce(grads, np.random.default_rng(0))


def test_reduce_rejects_empty():
    with pytest.raises(ValueError):
        CommunicationEngine().reduce([], np.random.default_rng(0))


def test_report_compression_ratio():
    engine = CommunicationEngine(CGXConfig.cgx_default())
    grads = make_grads(4)
    _, report = engine.reduce(grads, np.random.default_rng(0))
    assert report.compression_ratio > 2.0  # most bytes are the embedding
    assert report.packages >= 3
    assert report.wire_bytes > 0


def test_fused_mode_reduce_correct_dense():
    engine = CommunicationEngine(CGXConfig.baseline_nccl())
    grads = make_grads(4)
    reduced, report = engine.reduce(grads, np.random.default_rng(0),
                                    mode="fused")
    for name in grads[0]:
        expected = np.mean([g[name] for g in grads], axis=0)
        np.testing.assert_allclose(reduced[0][name], expected, rtol=1e-4,
                                   atol=1e-5)


def test_stateful_compressor_cached_across_calls():
    config = CGXConfig.cgx_default()
    config.per_layer["embed.weight"] = CompressionSpec(
        "topk", density=0.05, error_feedback=True)
    engine = CommunicationEngine(config)
    grads = make_grads(2)
    engine.reduce(grads, np.random.default_rng(0))
    comp = engine._compressors["embed.weight"]
    engine.reduce(grads, np.random.default_rng(1))
    assert engine._compressors["embed.weight"] is comp


# -- compressor cache across adaptive respec ----------------------------------

def test_compressor_for_carries_residuals_on_same_method_respec():
    spec = CompressionSpec("topk", density=0.05, error_feedback=True)
    config = CGXConfig(compression=spec)
    engine = CommunicationEngine(config)
    grads = make_grads(2)
    engine.reduce(grads, np.random.default_rng(0))
    before = engine._compressors["embed.weight"]
    norm_before = before.total_residual_norm()
    assert norm_before > 0  # topk at 5% leaves most of the gradient behind

    config.per_layer["embed.weight"] = CompressionSpec(
        "topk", density=0.2, error_feedback=True)
    layers = [L(name, g.size, tuple(g.shape)) for name, g in grads[0].items()]
    package = [p for p in engine.plan(layers) if p.name == "embed.weight"][0]
    after = engine._compressor_for(package)
    assert after is not before
    assert after.spec == package.spec
    assert after.total_residual_norm() == pytest.approx(norm_before)


def test_compressor_for_drops_residuals_on_method_change():
    spec = CompressionSpec("topk", density=0.05, error_feedback=True)
    config = CGXConfig(compression=spec)
    engine = CommunicationEngine(config)
    grads = make_grads(2)
    engine.reduce(grads, np.random.default_rng(0))
    assert engine._compressors["embed.weight"].total_residual_norm() > 0

    config.per_layer["embed.weight"] = CompressionSpec(
        "qsgd", bits=4, bucket_size=128, error_feedback=True)
    layers = [L(name, g.size, tuple(g.shape)) for name, g in grads[0].items()]
    package = [p for p in engine.plan(layers) if p.name == "embed.weight"][0]
    after = engine._compressor_for(package)
    # residuals are method-specific; a method change must start clean
    assert after.total_residual_norm() == 0


# -- scatter safety ------------------------------------------------------------

def test_scatter_outputs_of_fused_package_do_not_alias():
    engine = CommunicationEngine(CGXConfig.cgx_default())
    grads = make_grads(2)
    reduced, _ = engine.reduce(grads, np.random.default_rng(0))
    # fc.bias and ln.weight land in the fused "filtered" package and
    # historically came back as views into one shared flat buffer
    bias = reduced[0]["fc.bias"]
    ln = reduced[0]["ln.weight"]
    assert not np.shares_memory(bias, ln)
    snapshot = ln.copy()
    bias[:] = 1e6  # an optimizer mutating one gradient in place
    np.testing.assert_array_equal(ln, snapshot)


def test_scatter_outputs_are_mutation_safe_across_workers():
    engine = CommunicationEngine(CGXConfig.cgx_default())
    grads = make_grads(3)
    reduced, _ = engine.reduce(grads, np.random.default_rng(0))
    for a in range(3):
        for b in range(a + 1, 3):
            for name in reduced[a]:
                assert not np.shares_memory(reduced[a][name],
                                            reduced[b][name])

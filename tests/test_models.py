"""Tests for the scaled-down model zoo."""

import numpy as np
import pytest

from repro.nn import MODEL_FAMILIES, build_model
from repro.nn.data import MarkovText, SyntheticImages, SyntheticQA
from repro.nn.loss import (
    sequence_cross_entropy,
    softmax_cross_entropy,
    span_extraction_loss,
)


def test_registry_covers_paper_models():
    for family in ["resnet50", "vgg16", "vit", "transformer_xl", "gpt2",
                   "bert"]:
        assert family in MODEL_FAMILIES


def test_build_model_unknown_family_raises():
    with pytest.raises(KeyError):
        build_model("alexnet")


def test_same_seed_builds_identical_replicas():
    a = build_model("vit", seed=7)
    b = build_model("vit", seed=7)
    for (name_a, pa), (name_b, pb) in zip(a.named_parameters(),
                                          b.named_parameters()):
        assert name_a == name_b
        np.testing.assert_array_equal(pa.data, pb.data)


def test_different_seeds_differ():
    a = build_model("mlp", seed=1)
    b = build_model("mlp", seed=2)
    diffs = [not np.array_equal(pa.data, pb.data)
             for (_, pa), (_, pb) in zip(a.named_parameters(),
                                         b.named_parameters())]
    assert any(diffs)


@pytest.mark.parametrize("family", ["resnet50", "vgg16", "vit"])
def test_classifier_forward_backward(family):
    rng = np.random.default_rng(0)
    model = build_model(family, seed=0)
    data = SyntheticImages()
    x, y = data.sample(4, rng)
    logits = model(x)
    assert logits.shape == (4, 10)
    loss, grad = softmax_cross_entropy(logits, y)
    model.zero_grad()
    model.backward(grad)
    grads = [p.grad for p in model.parameters() if p.grad is not None]
    assert grads, "backward produced no gradients"
    assert all(np.all(np.isfinite(g)) for g in grads)


def test_lm_forward_backward_and_vocab():
    model = build_model("transformer_xl", vocab_size=32, max_len=16, dim=16,
                        depth=1, num_heads=2)
    data = MarkovText(vocab_size=32, seq_len=16)
    x, y = data.sample(3, np.random.default_rng(1))
    logits = model(x)
    assert logits.shape == (3, 16, 32)
    loss, grad = sequence_cross_entropy(logits, y)
    model.zero_grad()
    model.backward(grad)
    emb = dict(model.named_parameters())["embed.weight"]
    assert emb.grad is not None and np.any(emb.grad != 0)


def test_bert_qa_heads():
    model = build_model("bert", vocab_size=32, max_len=16, dim=16, depth=1,
                        num_heads=2)
    data = SyntheticQA(vocab_size=32, seq_len=16)
    tokens, starts, ends = data.sample(3, np.random.default_rng(2))
    logits = model(tokens)
    assert logits.shape == (3, 16, 2)
    loss, grad = span_extraction_loss(logits, starts, ends)
    model.zero_grad()
    model.backward(grad)
    assert loss > 0


def test_lm_rejects_overlong_sequence():
    model = build_model("transformer_xl", vocab_size=16, max_len=8, dim=16,
                        depth=1, num_heads=2)
    with pytest.raises(ValueError):
        model(np.zeros((1, 9), dtype=np.int64))


def test_state_dict_roundtrip():
    model = build_model("vit", seed=3)
    state = model.state_dict()
    other = build_model("vit", seed=99)
    other.load_state_dict(state)
    for (_, pa), (_, pb) in zip(model.named_parameters(),
                                other.named_parameters()):
        np.testing.assert_array_equal(pa.data, pb.data)


def test_load_state_dict_rejects_mismatch():
    model = build_model("mlp")
    state = model.state_dict()
    state.pop(next(iter(state)))
    with pytest.raises(KeyError):
        model.load_state_dict(state)


def test_parameter_names_include_filterable_layers():
    """CGX filters match on 'bias'/'bn'/'ln'/'norm' substrings; the model
    zoo must expose those names for the filters to act on."""
    model = build_model("resnet50")
    names = [n for n, _ in model.named_parameters()]
    assert any("bn" in n for n in names)
    assert any("bias" in n for n in names)
    vit = build_model("vit")
    vit_names = [n for n, _ in vit.named_parameters()]
    assert any("ln" in n or "norm" in n for n in vit_names)


def test_num_parameters_consistent():
    model = build_model("mlp", in_features=8, hidden=16, num_classes=4)
    # 8*16+16 + 16*16+16 + 16*4+4
    assert model.num_parameters() == 8 * 16 + 16 + 16 * 16 + 16 + 16 * 4 + 4


def test_zero_grad_clears_all():
    model = build_model("mlp")
    x = np.random.default_rng(0).normal(size=(2, 32)).astype(np.float32)
    loss, grad = softmax_cross_entropy(model(x), np.array([0, 1]))
    model.backward(grad)
    assert any(p.grad is not None for p in model.parameters())
    model.zero_grad()
    assert all(p.grad is None for p in model.parameters())

"""Focused tests for the hierarchical allreduce data path."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.collectives import hierarchical_allreduce
from repro.compression import CompressionSpec, make_compressor


def make_buffers(world, numel=200, seed=0):
    return [np.random.default_rng(seed + i).normal(size=numel)
            .astype(np.float32) for i in range(world)]


def test_uneven_node_sizes():
    """Nodes of different sizes (3 + 1) still reduce correctly."""
    bufs = make_buffers(4)
    exact = np.sum(bufs, axis=0)
    outs, _ = hierarchical_allreduce(
        bufs, make_compressor(CompressionSpec("none")),
        np.random.default_rng(0), node_of=[0, 0, 0, 1])
    for out in outs:
        np.testing.assert_allclose(out, exact, rtol=1e-4, atol=1e-5)


def test_single_gpu_nodes():
    """Every rank its own node degrades to inter-node SRA + broadcast."""
    bufs = make_buffers(4)
    exact = np.sum(bufs, axis=0)
    outs, stats = hierarchical_allreduce(
        bufs, make_compressor(CompressionSpec("none")),
        np.random.default_rng(0), node_of=[0, 1, 2, 3])
    np.testing.assert_allclose(outs[0], exact, rtol=1e-4, atol=1e-5)
    assert stats.scheme == "hier"


def test_none_node_map_is_single_node():
    bufs = make_buffers(4)
    outs, stats = hierarchical_allreduce(
        bufs, make_compressor(CompressionSpec("none")),
        np.random.default_rng(0), node_of=None)
    assert stats.scheme == "sra"  # fell back to flat SRA


@given(world=st.integers(2, 8), n_nodes=st.integers(1, 4),
       seed=st.integers(0, 50))
@settings(max_examples=30, deadline=None)
def test_hier_dense_exact_property(world, n_nodes, seed):
    node_of = [r % n_nodes for r in range(world)]
    bufs = make_buffers(world, numel=64, seed=seed)
    exact = np.sum(bufs, axis=0)
    outs, _ = hierarchical_allreduce(
        bufs, make_compressor(CompressionSpec("none")),
        np.random.default_rng(seed), node_of=node_of)
    for out in outs:
        np.testing.assert_allclose(out, exact, rtol=1e-3, atol=1e-4)


@given(world=st.integers(4, 8), seed=st.integers(0, 30))
@settings(max_examples=20, deadline=None)
def test_hier_quantized_identical_property(world, seed):
    node_of = [0 if r < world // 2 else 1 for r in range(world)]
    bufs = make_buffers(world, numel=256, seed=seed)
    comp = make_compressor(CompressionSpec("qsgd", bits=4, bucket_size=64))
    outs, _ = hierarchical_allreduce(bufs, comp, np.random.default_rng(seed),
                                     node_of=node_of)
    for out in outs[1:]:
        np.testing.assert_array_equal(outs[0], out)


def test_hier_error_bounded_by_recompression_depth():
    """Five quantization rounds still keep the error a modest fraction of
    the signal (each round is unbiased)."""
    world = 8
    bufs = make_buffers(world, numel=2048)
    exact = np.sum(bufs, axis=0)
    comp = make_compressor(CompressionSpec("qsgd", bits=4, bucket_size=128))
    outs, stats = hierarchical_allreduce(
        bufs, comp, np.random.default_rng(1), node_of=[0, 0, 0, 0, 1, 1, 1, 1])
    rel = np.linalg.norm(outs[0] - exact) / np.linalg.norm(exact)
    assert stats.max_recompressions == 5
    assert rel < 0.8


def test_hier_rejects_short_node_map():
    with pytest.raises(ValueError):
        hierarchical_allreduce(make_buffers(4),
                               make_compressor(CompressionSpec("none")),
                               np.random.default_rng(0), node_of=[0, 1])

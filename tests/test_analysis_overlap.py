"""Overlap certifier: every OVL rule fires on a tampered cell, the
clean battery certifies clean, and the OVL006 consumer lint holds the
real optimizer/trainer path to zero findings."""

import dataclasses
import os
import textwrap

import pytest

from repro.analysis.cli import build_parser, select_passes
from repro.analysis.overlap import (
    CELL_STEPS,
    OVL_RULES,
    OverlapCase,
    analyze_overlap_trace,
    certify_case,
    certify_trainer,
    check_fusion_conservation,
    check_makespan,
    check_priority,
    check_state_attribution,
    check_use_before_reduce,
    consumer_default_roots,
    lint_grad_consumer_source,
    lint_grad_consumers,
    overlap_cases,
    verify_overlap,
    _model_layers,
    _run_cell,
)
from repro.collectives.timing import SCHEMES
from repro.collectives.trace import BufferAccess, OverlapEvent

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures", "analysis",
                       "ovl006_grad_consumer.py")


def rules_of(findings):
    return {f.rule for f in findings}


def fresh_cell(scheme="sra", world=2, model="stack"):
    case = OverlapCase(scheme, world, model)
    trace, reports, _ = _run_cell(case)
    return case, trace, reports, _model_layers(model)


# -- the battery itself -------------------------------------------------------

def test_battery_covers_every_scheme_and_model():
    cases = overlap_cases(worlds=(2, 4))
    schemes = {case.scheme for case in cases}
    assert schemes == set(SCHEMES) | {"partial"}
    assert {case.model for case in cases} == {"stack", "mixed"}
    assert len(cases) == len(schemes) * 2 * 2
    assert cases[0].path.startswith("<overlap:")


def test_world_3_battery_certifies_clean():
    findings = verify_overlap(worlds=(3,), with_consumer_lint=True)
    assert findings == []


@pytest.mark.parametrize("scheme", ["ring", "hier", "partial"])
def test_single_cells_certify_clean(scheme):
    assert certify_case(OverlapCase(scheme, 4, "mixed")) == []


def test_trainer_cell_certifies_clean():
    assert certify_trainer(world=3, steps=2) == []


def test_cell_reports_carry_the_timeline():
    _, _, reports, layers = fresh_cell(model="mixed")
    assert len(reports) == CELL_STEPS
    for report in reports:
        assert len(report.buckets) >= 2
        assert report.overlapped_time < report.sequential_time
        assert report.overlap_ratio > 1.0
        covered = sorted(name for bucket in report.buckets
                         for name in bucket.layer_names)
        assert covered == sorted(name for name, _ in layers)


# -- OVL001: use-before-reduce ------------------------------------------------

def test_ovl001_fires_on_missing_bucket():
    case, trace, reports, layers = fresh_cell()
    names = [name for name, _ in layers] + ["ghost"]
    findings = check_use_before_reduce(case, trace, reports, names)
    assert rules_of(findings) == {"OVL001"}
    assert any("no bucket carries" in f.message for f in findings)


def test_ovl001_fires_on_consume_before_land():
    case, trace, reports, layers = fresh_cell()
    # rewind one grad_consumed event to before everything else
    for i, event in enumerate(trace.overlap_events):
        if event.kind == "grad_consumed" and event.step == 0 \
                and event.layer == "layer0":
            trace.overlap_events[i] = dataclasses.replace(
                event, t=-1.0, pos=0)
            break
    else:
        pytest.fail("no grad_consumed event for layer0 in step 0")
    findings = check_use_before_reduce(
        case, trace, reports, [name for name, _ in layers])
    assert rules_of(findings) == {"OVL001"}
    assert any("consumed before its reduction landed" in f.message
               for f in findings)


# -- OVL002: fusion conservation ----------------------------------------------

def test_ovl002_fires_on_dropped_bucket():
    case, _, reports, layers = fresh_cell()
    reports[0].buckets.pop()
    findings = check_fusion_conservation(case, reports, layers)
    assert "OVL002" in rules_of(findings)
    assert any("reduced twice or" in f.message for f in findings)


def test_ovl002_fires_on_byte_mismatch():
    case, _, reports, layers = fresh_cell()
    reports[1].buckets[0].dense_bytes += 4
    reports[2].buckets[0].wire_bytes += 1
    reports[3].buckets[0].measured_bytes += 1
    findings = check_fusion_conservation(case, reports, layers)
    assert rules_of(findings) == {"OVL002"}
    messages = " | ".join(f.message for f in findings)
    assert "dense accounting" in messages
    assert "wire accounting" in messages
    assert "serialized payload" in messages


# -- OVL003: launch priority --------------------------------------------------

def test_ovl003_fires_on_launch_before_seal():
    case, _, reports, _ = fresh_cell()
    bucket = reports[0].buckets[-1]
    bucket.launch_t = bucket.ready_t - 1.0
    findings = check_priority(case, reports)
    assert "OVL003" in rules_of(findings)
    assert any("before sealing" in f.message for f in findings)


def test_ovl003_fires_on_channel_overlap():
    case, _, reports, _ = fresh_cell()
    ordered = sorted(reports[0].buckets, key=lambda b: b.launch_t)
    # stretch the first transfer over the second launch
    ordered[0].landed_t = ordered[1].launch_t + 1.0
    findings = check_priority(case, reports)
    assert "OVL003" in rules_of(findings)
    assert any("still held the channel" in f.message for f in findings)


def test_ovl003_fires_on_priority_inversion():
    case, _, reports, _ = fresh_cell()
    ordered = sorted(reports[0].buckets, key=lambda b: b.launch_t)
    # make the first-launched bucket the least urgent: the sealed
    # better bucket it jumped becomes an inversion
    ordered[0].first_needed = max(b.first_needed for b in ordered) + 1
    ordered[1].ready_t = ordered[0].launch_t
    findings = check_priority(case, reports)
    assert "OVL003" in rules_of(findings)
    assert any("priority inversion" in f.message for f in findings)


# -- OVL004: state attribution ------------------------------------------------

def test_ovl004_fires_on_unattributed_state_access():
    case, trace, reports, _ = fresh_cell()
    trace.timeline.append(
        BufferAccess("update", 0, "state", repr("stray-key"), 0, 0, ""))
    findings = check_state_attribution(case, trace, reports)
    assert rules_of(findings) == {"OVL004"}
    assert any("outside every bucket's execution span" in f.message
               for f in findings)


def test_ovl004_fires_on_shared_state_key():
    case, trace, reports, _ = fresh_cell()
    buckets = reports[0].buckets
    # two buckets claiming the same execution span co-own every state
    # key the span contains
    buckets[1].exec_span = buckets[0].exec_span
    findings = check_state_attribution(case, trace, reports)
    assert "OVL004" in rules_of(findings)
    assert any("two in-flight reductions share residual state"
               in f.message for f in findings)


def test_ovl004_fires_on_missing_execution_span():
    case, trace, reports, _ = fresh_cell()
    reports[0].buckets[0].exec_span = (-1, -1)
    findings = check_state_attribution(case, trace, reports)
    assert "OVL004" in rules_of(findings)
    assert any("the reduction never ran" in f.message for f in findings)


# -- OVL005: makespan bound ---------------------------------------------------

def test_ovl005_fires_on_busted_makespan():
    case, _, reports, _ = fresh_cell()
    reports[0].overlapped_time = 2.0 * reports[0].sequential_time
    findings = check_makespan(case, reports)
    assert rules_of(findings) == {"OVL005"}
    messages = " | ".join(f.message for f in findings)
    assert "exceeds the bound" in messages
    assert "overlap bought" in messages


# -- combining the dynamic rules ----------------------------------------------

def test_analyze_overlap_trace_collects_all_rules():
    case, trace, reports, layers = fresh_cell()
    reports[0].buckets[0].dense_bytes += 4
    reports[1].overlapped_time = 2.0 * reports[1].sequential_time
    findings = analyze_overlap_trace(case, trace, reports, layers)
    assert {"OVL002", "OVL005"} <= rules_of(findings)
    for finding in findings:
        assert finding.source == "overlap"
        assert finding.path == case.path
        assert finding.rule in OVL_RULES


def test_overlap_fingerprints_distinguish_models():
    case_a, trace, reports, layers = fresh_cell(model="stack")
    case_b = OverlapCase("sra", 2, "mixed")
    reports[0].overlapped_time = 2.0 * reports[0].sequential_time
    f_stack = check_makespan(case_a, reports)[0]
    f_mixed = dataclasses.replace(f_stack, path=case_b.path)
    # same rule/scheme/world/message, different model axis: the
    # pseudo-path keeps the fingerprints apart
    assert f_stack.fingerprint != f_mixed.fingerprint
    assert f_stack.render().startswith("overlap[sra@world=2]:")


# -- OVL006: the consumer lint ------------------------------------------------

def test_ovl006_fixture_flags_exactly_the_sneaky_consumer():
    findings = lint_grad_consumers([FIXTURE])
    assert len(findings) == 1
    finding = findings[0]
    assert finding.rule == "OVL006"
    assert "sneaky_update" in finding.message
    assert finding.snippet == "param.data -= lr * param.grad"
    assert finding.line > 0
    # snippet-carrying findings use the lint-style fingerprint
    assert ":" in finding.render()


def test_ovl006_real_consumer_path_is_clean():
    assert lint_grad_consumers() == []
    roots = consumer_default_roots()
    assert len(roots) == 3
    assert all(os.path.isfile(root) for root in roots)


def test_ovl006_barrier_call_suppresses():
    source = textwrap.dedent("""
        def ok(ddp, params, step):
            ddp.mark_consumed(step)
            return [p.grad for p in params]
    """)
    assert lint_grad_consumer_source(source, "<test>") == []


def test_ovl006_decorator_suppresses():
    source = textwrap.dedent("""
        @grad_consumer
        def ok(params):
            return [p.grad for p in params]
    """)
    assert lint_grad_consumer_source(source, "<test>") == []


def test_ovl006_exempt_names_suppress():
    source = textwrap.dedent("""
        def zero_grad(params):
            for p in params:
                if p.grad is not None:
                    p.grad = None
    """)
    assert lint_grad_consumer_source(source, "<test>") == []


def test_ovl006_nested_function_not_charged_to_parent():
    source = textwrap.dedent("""
        def outer(ddp, params, step):
            ddp.synchronize_overlapped(step=step)

            def inner():
                return [p.grad for p in params]

            return inner
    """)
    findings = lint_grad_consumer_source(source, "<test>")
    # the parent has a barrier; the nested reader is its own finding
    assert len(findings) == 1
    assert "'inner'" in findings[0].message


def test_ovl006_occurrence_numbering_is_stable():
    source = textwrap.dedent("""
        def a(params):
            return [p.grad for p in params]

        def b(params):
            return [p.grad for p in params]
    """)
    findings = lint_grad_consumer_source(source, "<test>")
    assert len(findings) == 2


# -- CLI wiring ---------------------------------------------------------------

def test_cli_overlap_flag_selects_only_overlap():
    args = build_parser().parse_args(["--overlap"])
    assert select_passes(args) == ("overlap",)


def test_cli_all_includes_overlap():
    args = build_parser().parse_args(["--all"])
    assert "overlap" in select_passes(args)


def test_cli_overlap_combines_with_liveness():
    args = build_parser().parse_args(["--liveness", "--overlap"])
    assert select_passes(args) == ("liveness", "overlap")

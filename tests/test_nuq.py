"""Tests for NUQSGD (exponential-level quantization) and scaling modes."""

import numpy as np
import pytest

from repro.compression import (
    CompressionSpec,
    NUQSGDCompressor,
    exponential_levels,
    make_compressor,
    measure_error,
)


def test_exponential_levels_structure():
    levels = exponential_levels(4)  # 7 nonzero levels + 0
    assert levels[0] == 0.0
    assert levels[-1] == 1.0
    assert len(levels) == 8
    # geometric: each nonzero level doubles the previous
    ratios = levels[2:] / levels[1:-1]
    np.testing.assert_allclose(ratios, 2.0)


def test_exponential_levels_rejects_tiny_bits():
    with pytest.raises(ValueError):
        exponential_levels(1)


def test_nuq_roundtrip_shape_and_registry():
    spec = CompressionSpec("nuq", bits=4, bucket_size=64)
    comp = make_compressor(spec)
    assert isinstance(comp, NUQSGDCompressor)
    rng = np.random.default_rng(0)
    x = rng.normal(size=(9, 17)).astype(np.float32)
    out = comp.roundtrip(x, rng)
    assert out.shape == x.shape


def test_nuq_zero_vector_exact():
    comp = make_compressor(CompressionSpec("nuq", bits=4, bucket_size=64))
    x = np.zeros(100, dtype=np.float32)
    np.testing.assert_array_equal(comp.roundtrip(x, np.random.default_rng(0)),
                                  x)


def test_nuq_unbiased():
    rng = np.random.default_rng(1)
    x = rng.normal(size=256).astype(np.float32)
    comp = make_compressor(CompressionSpec("nuq", bits=4, bucket_size=128))
    mean = np.zeros_like(x)
    trials = 400
    for i in range(trials):
        mean += comp.roundtrip(x, np.random.default_rng(i))
    mean /= trials
    assert float(np.abs(mean - x).mean()) < 0.03 * float(np.abs(x).mean()) \
        + 0.01


def test_nuq_values_on_the_level_grid():
    rng = np.random.default_rng(2)
    x = rng.normal(size=128).astype(np.float32)
    comp = NUQSGDCompressor(CompressionSpec("nuq", bits=4, bucket_size=128))
    out = comp.roundtrip(x, rng)
    scale = float(np.abs(x).max())
    normalized = np.abs(out) / scale
    levels = exponential_levels(4)
    for value in normalized:
        assert np.min(np.abs(levels - value)) < 1e-6


def test_nuq_wire_bytes_match_qsgd():
    nuq = CompressionSpec("nuq", bits=4, bucket_size=128)
    qsgd = CompressionSpec("qsgd", bits=4, bucket_size=128)
    assert nuq.wire_bytes(10_000) == qsgd.wire_bytes(10_000)


def test_nuq_beats_l2_qsgd_at_low_bits():
    """The NUQSGD paper's claim, reproduced: with L2 bucket scaling,
    exponential levels have lower variance than the uniform grid at
    low bit-widths."""
    rng = np.random.default_rng(3)
    x = rng.normal(size=1 << 16).astype(np.float32)
    for bits in [3, 4]:
        uniform = measure_error(
            CompressionSpec("qsgd", bits=bits, bucket_size=128,
                            scaling="l2"), x, np.random.default_rng(1))
        exponential = measure_error(
            CompressionSpec("nuq", bits=bits, bucket_size=128,
                            scaling="l2"), x, np.random.default_rng(1))
        assert exponential.relative < uniform.relative, bits


def test_cgx_max_scaling_beats_both_l2_variants():
    """The design-justification result: CGX's max-scaled small-bucket
    uniform quantizer has lower error than either L2-scaled scheme."""
    rng = np.random.default_rng(4)
    x = rng.normal(size=1 << 16).astype(np.float32)
    for bits in [3, 4, 8]:
        cgx = measure_error(
            CompressionSpec("qsgd", bits=bits, bucket_size=128), x,
            np.random.default_rng(1)).relative
        l2_uniform = measure_error(
            CompressionSpec("qsgd", bits=bits, bucket_size=128,
                            scaling="l2"), x,
            np.random.default_rng(1)).relative
        l2_exp = measure_error(
            CompressionSpec("nuq", bits=bits, bucket_size=128,
                            scaling="l2"), x,
            np.random.default_rng(1)).relative
        assert cgx <= min(l2_uniform, l2_exp), bits


def test_scaling_validation():
    with pytest.raises(ValueError):
        CompressionSpec("qsgd", bits=4, scaling="minmax")


def test_nuq_in_collectives():
    """NUQ slots into the engine/collective stack like any compressor."""
    from repro.collectives import allreduce

    bufs = [np.random.default_rng(i).normal(size=300).astype(np.float32)
            for i in range(4)]
    comp = make_compressor(CompressionSpec("nuq", bits=4, bucket_size=64))
    outs, stats = allreduce("sra", bufs, comp, np.random.default_rng(0))
    exact = np.sum(bufs, axis=0)
    rel = np.linalg.norm(outs[0] - exact) / np.linalg.norm(exact)
    assert rel < 0.6
    assert all(np.array_equal(outs[0], o) for o in outs)


def test_nuq_huge_bucket_size_does_not_overallocate():
    """Regression twin of the QSGD huge-bucket test."""
    spec = CompressionSpec("nuq", bits=4, bucket_size=1 << 30)
    comp = make_compressor(spec)
    rng = np.random.default_rng(0)
    x = rng.normal(size=4096).astype(np.float32)
    out = comp.roundtrip(x, rng)
    assert out.shape == x.shape

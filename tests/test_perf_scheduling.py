"""Tests for perf-model scheduling features: grouping, overlap,
cross-barrier, PowerSGD path, GRACE path."""

import pytest

from repro.cluster import get_machine
from repro.compression import CompressionSpec
from repro.core import CGXConfig, CommunicationEngine, LayerInfo
from repro.models import build_spec
from repro.training import simulate_machine_step
from repro.core.engine import group_for_transmission as _group_for_transmission

RTX = get_machine("rtx3090-8x")


def make_packages(sizes, spec=None):
    spec = spec or CompressionSpec("qsgd", bits=4, bucket_size=128)
    engine = CommunicationEngine(CGXConfig(compression=spec,
                                           filtered_keywords=(),
                                           min_compress_numel=0))
    layers = [LayerInfo(f"l{i}", n) for i, n in enumerate(sizes)]
    return engine.plan(layers, mode="cgx")


def test_grouping_fuses_consecutive_small_packages():
    packages = make_packages([1000] * 10)
    grouped = _group_for_transmission(packages, 16_000)
    assert len(grouped) < 10
    total = sum(p.numel for p in grouped)
    assert total == 10_000


def test_grouping_leaves_large_packages_alone():
    packages = make_packages([1000, 50_000_000, 1000])
    grouped = _group_for_transmission(packages, 1 << 20)
    big = [p for p in grouped if p.numel == 50_000_000]
    assert len(big) == 1
    assert len(big[0].layers) == 1


def test_grouping_respects_spec_boundaries():
    spec_a = CompressionSpec("qsgd", bits=4, bucket_size=128)
    spec_b = CompressionSpec("qsgd", bits=2, bucket_size=64)
    config = CGXConfig(compression=spec_a, filtered_keywords=(),
                       min_compress_numel=0)
    config.per_layer["l1"] = spec_b
    engine = CommunicationEngine(config)
    layers = [LayerInfo(f"l{i}", 1000) for i in range(3)]
    packages = engine.plan(layers, mode="cgx")
    grouped = _group_for_transmission(packages, 1 << 20)
    # l1 has a different spec and cannot fuse with l0/l2
    assert len(grouped) == 3


def test_grouping_never_fuses_powersgd():
    spec = CompressionSpec("powersgd", rank=4)
    packages = make_packages([1000, 1000], spec=spec)
    grouped = _group_for_transmission(packages, 1 << 20)
    assert len(grouped) == 2


def test_overlap_flag_changes_step_time():
    spec = build_spec("vit")
    on = CGXConfig.cgx_default()
    off = CGXConfig.cgx_default()
    off.overlap = False
    t_on = simulate_machine_step(RTX, spec, on)
    t_off = simulate_machine_step(RTX, spec, off)
    assert t_off.step_time > t_on.step_time


def test_cross_barrier_bounded_gain():
    spec = build_spec("resnet50")
    normal = CGXConfig.cgx_default()
    crossed = CGXConfig.cgx_default()
    crossed.cross_barrier = True
    t_normal = simulate_machine_step(RTX, spec, normal)
    t_crossed = simulate_machine_step(RTX, spec, crossed)
    assert t_crossed.step_time <= t_normal.step_time
    # steady-state can never beat max(compute, comm)
    assert t_crossed.step_time >= t_crossed.compute_time


def test_powersgd_pays_fp32_penalty_only_when_used():
    spec = build_spec("transformer_xl")
    quant = simulate_machine_step(RTX, spec, CGXConfig.cgx_default())
    ps_config = CGXConfig(backend="shm", scheme="sra",
                          compression=CompressionSpec("powersgd", rank=8))
    ps = simulate_machine_step(RTX, spec, ps_config)
    assert ps.compute_time == pytest.approx(
        quant.compute_time * spec.fp32_compute_factor, rel=1e-6)


def test_powersgd_wire_far_below_dense():
    spec = build_spec("vit")
    ps_config = CGXConfig(backend="shm", scheme="sra",
                          compression=CompressionSpec("powersgd", rank=4))
    t = simulate_machine_step(RTX, spec, ps_config)
    assert t.wire_bytes < 0.25 * spec.gradient_bytes * 8


def test_grace_no_overlap_shows_in_tail():
    from repro.baselines import grace_config

    spec = build_spec("vit")
    grace = simulate_machine_step(RTX, spec, grace_config(),
                                  plan_mode="fused")
    # everything happens after backward: tail ~= total comm time
    assert grace.comm_tail > 0
    assert grace.step_time >= grace.compute_time + grace.comm_tail * 0.99


def test_qnccl_kernel_factor_applied_via_wrapper():
    from repro.core.qnccl import qnccl_config

    spec = build_spec("resnet50")
    qn = simulate_machine_step(RTX, spec, qnccl_config(), plan_mode="fused")
    # same config but without the kernel-overhead factor
    fast = simulate_machine_step(RTX, spec, qnccl_config(),
                                 plan_mode="fused", kernel_factor=1.0)
    assert qn.step_time >= fast.step_time

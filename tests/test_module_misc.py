"""Edge-case tests for the module/parameter machinery."""

import numpy as np
import pytest

from repro.nn import Linear, Module, Parameter, ReLU, Sequential


def test_parameter_accumulate_grad():
    p = Parameter(np.zeros(3, dtype=np.float32))
    p.accumulate_grad(np.ones(3, dtype=np.float32))
    p.accumulate_grad(np.ones(3, dtype=np.float32))
    np.testing.assert_array_equal(p.grad, [2, 2, 2])
    p.zero_grad()
    assert p.grad is None


def test_parameter_casts_to_float32():
    p = Parameter(np.array([1, 2, 3]))  # int input
    assert p.data.dtype == np.float32
    assert p.numel == 3
    assert p.shape == (3,)


def test_sequential_append_registers_child():
    model = Sequential(Linear(4, 4, rng=np.random.default_rng(0)))
    model.append(ReLU())
    model.append(Linear(4, 2, rng=np.random.default_rng(1)))
    assert len(model) == 3
    names = [n for n, _ in model.named_parameters()]
    assert "2.weight" in names
    x = np.ones((1, 4), dtype=np.float32)
    assert model(x).shape == (1, 2)


def test_modules_traversal_depth_first():
    inner = Sequential(Linear(2, 2, rng=np.random.default_rng(0)))
    outer = Sequential(inner, ReLU())
    found = list(outer.modules())
    assert outer in found and inner in found
    assert any(isinstance(m, Linear) for m in found)
    assert any(isinstance(m, ReLU) for m in found)


def test_train_eval_propagates():
    model = Sequential(Linear(2, 2, rng=np.random.default_rng(0)), ReLU())
    model.eval()
    assert all(not m.training for m in model.modules())
    model.train()
    assert all(m.training for m in model.modules())


def test_assigning_module_before_init_raises():
    class Broken(Module):
        def __init__(self):
            # forgot super().__init__() before assigning a child
            self.child = ReLU()

    with pytest.raises(RuntimeError):
        Broken()


def test_load_state_dict_shape_mismatch():
    a = Linear(4, 4, rng=np.random.default_rng(0))
    state = a.state_dict()
    state["weight"] = np.zeros((2, 2), dtype=np.float32)
    with pytest.raises(ValueError):
        a.load_state_dict(state)


def test_base_module_forward_backward_abstract():
    m = Module()
    with pytest.raises(NotImplementedError):
        m.forward(np.zeros(1))
    with pytest.raises(NotImplementedError):
        m.backward(np.zeros(1))


def test_num_parameters_counts_children():
    model = Sequential(Linear(3, 5, rng=np.random.default_rng(0)),
                       Linear(5, 2, rng=np.random.default_rng(1)))
    assert model.num_parameters() == (3 * 5 + 5) + (5 * 2 + 2)

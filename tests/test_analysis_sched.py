"""Fleet-schedule certifier: every SCD rule fires on a tampered or
doctored cell, the clean fleets certify clean, and the job-tag lint
catches untagged scheduling calls.

The tamper tests are the pillar's teeth: each one takes a healthy
fleet, breaks exactly one invariant (in the log, the live counters, or
an injected probe network), and proves the matching rule reports it.
"""

import json
import os

import pytest

from repro.analysis.findings import Finding
from repro.analysis.sched import (
    SCD_RULES,
    _certify_conservation,
    _certify_fairness,
    _certify_isolation,
    _certify_log,
    _certify_metric_degenerates,
    _certify_throttles,
    certify_fleet,
    lint_job_tagging,
    lint_job_tagging_source,
    tagging_default_roots,
    verify_fleet_log,
    verify_sched,
)
from repro.cluster import Network, get_machine, make_cluster
from repro.models import ModelSpec, TensorSpec
from repro.sched import (
    DYADIC_SHARES,
    FleetSimulator,
    JobSpec,
    apply_throttles,
    fleet_cases,
    sample_fleet,
)

PATH = "<sched:test@n=3/unit>"

#: comm-dominated probe model (same idiom as test_sched_fleet): tiny
#: compute makes fleets cheap and contention math visible
TINY = ModelSpec("tinynet", tensors=[
    TensorSpec("fc1.weight", "linear", 1 << 20, flops=1e3, position=0,
               shape=(1024, 1024)),
    TensorSpec("fc2.weight", "linear", 1 << 20, flops=1e3, position=1,
               shape=(1024, 1024)),
], default_batch_per_gpu=1)
LIB = {"tinynet": TINY}


def rules_of(findings):
    return {f.rule for f in findings}


def messages_of(findings):
    return " | ".join(f.message for f in findings)


def run_fleet(jobs, topology=None, **kwargs):
    topo = topology if topology is not None \
        else get_machine("rtx3090-8x").topology()
    kwargs.setdefault("spec_library", LIB)
    kwargs.setdefault("trace", True)
    kwargs.setdefault("audit", True)
    return FleetSimulator(topo, jobs, **kwargs).run()


def shared_jobs():
    """Three 2-rank jobs on one box: shared host-memory links, one
    throttled tenant so SCD004 has a non-trivial share to probe."""
    return [JobSpec(1, "tinynet", 2, 0.0, 2),
            JobSpec(2, "tinynet", 2, 0.0, 2, throttle=0.5),
            JobSpec(3, "tinynet", 2, 0.1, 2)]


def disjoint_jobs():
    """Two full-machine jobs on a 2-node fleet: private links."""
    return [JobSpec(1, "tinynet", 8, 0.0, 2),
            JobSpec(2, "tinynet", 8, 0.0, 2)]


@pytest.fixture(scope="module")
def clean_result():
    """A healthy shared-link fleet; read-only in the tests that use it
    (tamper tests parse a fresh payload or run their own fleet)."""
    return run_fleet(shared_jobs())


def fresh_payload(result):
    return json.loads(result.log_bytes().decode("utf-8"))


def record_of(payload, event, job):
    for record in payload["records"]:
        if record["event"] == event and record["job"] == job:
            return record
    raise AssertionError(f"no {event!r} record for job {job}")


# -- the rule table and the battery ---------------------------------------------

def test_scd_rule_table_is_complete():
    assert sorted(SCD_RULES) == [f"SCD00{i}" for i in range(1, 8)]


def test_battery_covers_the_advertised_axes():
    cases = fleet_cases()
    assert len(cases) == 30
    assert len({c.name for c in cases} | {c.path for c in cases}) >= 30
    assert {c.policy for c in cases} == {"packed", "spread", "numa"}
    assert {c.routing for c in cases} == {"static", "adaptive"}
    sizes = {c.n_jobs for c in cases}
    assert min(sizes) == 4 and max(sizes) == 200
    throttled = [c for c in cases if c.throttle_stride]
    assert throttled
    for case in throttled:
        shares = {s.throttle for s in case.jobs()} - {1.0}
        assert shares and shares <= set(DYADIC_SHARES)
    first = cases[0]
    assert first.path == \
        f"<sched:{first.policy}-{first.routing}@n={first.n_jobs}/{first.name}>"


def test_apply_throttles_rejects_bad_stride():
    specs = sample_fleet(4, seed=0, models=("resnet50",))
    with pytest.raises(ValueError):
        apply_throttles(specs, stride=0)
    throttled = apply_throttles(specs, stride=2)
    assert [s.throttle for s in throttled] == [0.5, 1.0, 0.25, 1.0]


# -- clean fleets certify clean --------------------------------------------------

def test_clean_shared_fleet_certifies_clean(clean_result):
    assert certify_fleet(clean_result, PATH) == []


def test_clean_disjoint_fleet_certifies_clean():
    result = run_fleet(disjoint_jobs(), make_cluster("rtx3090-8x", 2))
    assert certify_fleet(result, PATH) == []


def test_verify_sched_first_battery_cell_is_clean():
    # one real battery cell end-to-end, plus the degenerate metric
    # probes and the job-tag lint that verify_sched always runs
    assert verify_sched(cases=fleet_cases()[:1]) == []


def test_sched_findings_render_with_scheme_and_jobs():
    finding = Finding(rule="SCD001", path=PATH, line=0, col=0,
                      message="synthetic", source="sched",
                      scheme="packed-static", world=3)
    assert finding.render() == \
        "sched[packed-static@jobs=3]: SCD001 synthetic"
    twin = Finding(rule="SCD001", path="<sched:other@n=3/unit>", line=0,
                   col=0, message="synthetic", source="sched",
                   scheme="packed-static", world=3)
    # the pseudo-path is part of the identity: same message in another
    # cell must not collide in the baseline
    assert finding.fingerprint != twin.fingerprint


# -- SCD001: placement soundness from the log ------------------------------------

def test_scd001_duplicate_gpus_flagged(clean_result):
    payload = fresh_payload(clean_result)
    admit = record_of(payload, "admit", 1)
    admit["ranks"] = [admit["ranks"][0]] * 2
    findings = verify_fleet_log(payload, PATH)
    assert "SCD001" in rules_of(findings)
    assert "duplicate GPUs" in messages_of(findings)


def test_scd001_out_of_range_gpu_flagged(clean_result):
    payload = fresh_payload(clean_result)
    record_of(payload, "admit", 2)["ranks"][1] = 999
    findings = verify_fleet_log(payload, PATH)
    assert rules_of(findings) == {"SCD001"}
    assert "outside the fleet's" in messages_of(findings)


def test_scd001_double_booking_flagged(clean_result):
    payload = fresh_payload(clean_result)
    first = record_of(payload, "admit", 1)
    record_of(payload, "admit", 2)["ranks"] = list(first["ranks"])
    findings = verify_fleet_log(payload, PATH)
    assert "SCD001" in rules_of(findings)
    assert "double booking" in messages_of(findings)


def test_scd001_world_size_mismatch_flagged(clean_result):
    payload = fresh_payload(clean_result)
    admit = record_of(payload, "admit", 3)
    admit["ranks"] = admit["ranks"][:1]
    findings = verify_fleet_log(payload, PATH)
    assert "SCD001" in rules_of(findings)
    assert "its spec asks for 2" in messages_of(findings)


def test_scd001_unknown_job_flagged(clean_result):
    payload = fresh_payload(clean_result)
    payload["records"].append({"event": "arrive", "job": 99, "t": 0.0})
    findings = verify_fleet_log(payload, PATH)
    assert rules_of(findings) == {"SCD001"}
    assert "unknown job 99" in messages_of(findings)


# -- SCD002: admission liveness, FIFO, step chains -------------------------------

def test_scd002_starvation_flagged(clean_result):
    payload = fresh_payload(clean_result)
    payload["records"] = [
        r for r in payload["records"]
        if r["job"] != 3 or r["event"] == "arrive"]
    findings = verify_fleet_log(payload, PATH)
    assert rules_of(findings) == {"SCD002"}
    assert "never admitted — starvation" in messages_of(findings)


def test_scd002_unfinished_job_flagged(clean_result):
    payload = fresh_payload(clean_result)
    payload["records"] = [
        r for r in payload["records"]
        if not (r["job"] == 3 and r["event"] == "finish")]
    findings = verify_fleet_log(payload, PATH)
    assert rules_of(findings) == {"SCD002"}
    assert "never finishes" in messages_of(findings)


def test_scd002_fifo_violation_flagged(clean_result):
    payload = fresh_payload(clean_result)
    records = payload["records"]
    i = records.index(record_of(payload, "admit", 1))
    j = records.index(record_of(payload, "admit", 2))
    records[i], records[j] = records[j], records[i]
    findings = verify_fleet_log(payload, PATH)
    assert rules_of(findings) == {"SCD002"}
    assert "leaves the FIFO arrival order" in messages_of(findings)


def test_scd002_torn_step_chain_flagged(clean_result):
    payload = fresh_payload(clean_result)
    steps = [r for r in payload["records"]
             if r["event"] == "step" and r["job"] == 1]
    steps[1]["step"] = 3
    findings = verify_fleet_log(payload, PATH)
    assert rules_of(findings) == {"SCD002"}
    assert "step chain torn" in messages_of(findings)


def test_scd002_step_start_gap_flagged(clean_result):
    payload = fresh_payload(clean_result)
    steps = [r for r in payload["records"]
             if r["event"] == "step" and r["job"] == 2]
    steps[1]["t"] = steps[1]["t"] + 123.0
    findings = verify_fleet_log(payload, PATH)
    assert "SCD002" in rules_of(findings)
    assert "not at its step 1 end" in messages_of(findings)


def test_scd002_queue_wait_accounting_mismatch_flagged():
    result = run_fleet(shared_jobs())
    result.states[0].admit_time += 1.0   # books a wait the log never saw
    findings = _certify_log(result, PATH)
    assert rules_of(findings) == {"SCD002"}
    assert "queue_wait" in messages_of(findings)


# -- SCD003: exact conservation ---------------------------------------------------

def pick_busy_link(result):
    for name, resource in sorted(result.network.pool.resources().items()):
        if resource.busy_time and not name.startswith("gpu"):
            return resource
    raise AssertionError("no busy shared resource in the fleet")


def test_scd003_requires_the_audit_ledger():
    result = run_fleet(shared_jobs(), audit=False)
    findings = _certify_conservation(result, PATH)
    assert rules_of(findings) == {"SCD003"}
    assert "without the conservation audit ledger" in messages_of(findings)


def test_scd003_counter_mutation_bypassing_ledger_flagged():
    result = run_fleet(shared_jobs())
    pick_busy_link(result).busy_time += 1.0
    findings = _certify_conservation(result, PATH)
    assert rules_of(findings) == {"SCD003"}
    assert "bypassed the ledger" in messages_of(findings)


def test_scd003_untagged_occupation_flagged():
    result = run_fleet(shared_jobs())
    resource = pick_busy_link(result)
    resource.ledger.append((None, 0.25))
    findings = _certify_conservation(result, PATH)
    assert rules_of(findings) == {"SCD003"}
    assert "no job tag" in messages_of(findings)


def test_scd003_wire_byte_mismatch_flagged():
    result = run_fleet(shared_jobs())
    result.network._job_bytes[1] += 1
    findings = _certify_conservation(result, PATH)
    assert rules_of(findings) == {"SCD003"}
    assert "job-side wire_bytes" in messages_of(findings)
    assert "do not conserve" in messages_of(findings)


def test_scd003_overzealous_clear_trace_flagged(monkeypatch):
    result = run_fleet(shared_jobs())
    network = result.network
    monkeypatch.setattr(network, "clear_trace",
                        lambda job=None: network.trace.clear())
    findings = _certify_conservation(result, PATH)
    assert rules_of(findings) == {"SCD003"}
    assert "dropped trace records" in messages_of(findings)
    # the check restored the evidence it cleared
    assert any(r.job == 2 for r in network.trace)


# -- SCD004: throttle semantics ---------------------------------------------------

class CheatingNetwork(Network):
    """A network that silently ignores declared throttles."""

    def set_job_throttle(self, job, rate):
        pass


def test_scd004_ignored_throttle_flagged(clean_result):
    findings = _certify_throttles(clean_result, PATH,
                                  network_cls=CheatingNetwork)
    assert rules_of(findings) == {"SCD004"}
    assert "does not scale bandwidth as declared" in messages_of(findings)


def test_scd004_unreleased_throttle_flagged():
    result = run_fleet(shared_jobs())
    result.network.set_job_throttle(1, 0.5)   # job 1 already departed
    findings = _certify_throttles(result, PATH)
    assert rules_of(findings) == {"SCD004"}
    assert "never released" in messages_of(findings)


# -- SCD005: isolation bounds -----------------------------------------------------

def step_records(result, job):
    return [r for r in result.records
            if r["event"] == "step" and r["job"] == job]


def test_scd005_lower_bound_violation_flagged():
    result = run_fleet(shared_jobs())
    record = step_records(result, 2)[0]
    record["end"] = record["t"]   # a zero-duration step beats isolation
    findings = _certify_isolation(result, PATH)
    assert rules_of(findings) == {"SCD005"}
    assert "contention accelerated it" in messages_of(findings)


def test_scd005_step_count_mismatch_flagged(monkeypatch):
    result = run_fleet(shared_jobs())
    monkeypatch.setattr(result, "isolated_replay", lambda job: [])
    findings = _certify_isolation(result, PATH)
    assert rules_of(findings) == {"SCD005"}
    assert "cannot compare isolation" in messages_of(findings)


def test_scd005_disjoint_fleet_must_be_bit_identical():
    result = run_fleet(disjoint_jobs(), make_cluster("rtx3090-8x", 2))
    assert _certify_isolation(result, PATH) == []
    step_records(result, 2)[0]["end"] += 0.5   # delayed, but by nobody
    findings = _certify_isolation(result, PATH)
    assert rules_of(findings) == {"SCD005"}
    assert "not bit-identical" in messages_of(findings)


def test_scd005_serialization_ceiling_flagged():
    result = run_fleet(shared_jobs())
    step_records(result, 1)[1]["end"] += 1000.0   # delay beyond any rival
    findings = _certify_isolation(result, PATH)
    assert rules_of(findings) == {"SCD005"}
    assert "more than full serialization" in messages_of(findings)


# -- SCD006: fairness-metric validity ---------------------------------------------

def test_scd006_degenerate_probes_certify_clean():
    assert _certify_metric_degenerates() == []


def test_scd006_out_of_range_jain_flagged(clean_result, monkeypatch):
    import repro.sched.metrics as metrics_mod

    monkeypatch.setattr(metrics_mod, "jain_fairness", lambda values: 1.5)
    findings = _certify_fairness(clean_result, PATH)
    assert rules_of(findings) == {"SCD006"}
    assert "outside (0, 1]" in messages_of(findings)


def test_scd006_raising_percentile_flagged(monkeypatch):
    import repro.sched.metrics as metrics_mod

    def boom(values, p):
        raise ValueError("percentile of empty sequence")

    monkeypatch.setattr(metrics_mod, "percentile", boom)
    findings = _certify_metric_degenerates()
    assert rules_of(findings) == {"SCD006"}
    assert "raised ValueError" in messages_of(findings)


# -- SCD007: job-tag lint ---------------------------------------------------------

FIXTURE = os.path.join(os.path.dirname(__file__), "fixtures", "analysis",
                       "scd007_job_tagging.py")


def test_scd007_fixture_flags_only_the_untagged_calls():
    with open(FIXTURE, encoding="utf-8") as handle:
        source = handle.read()
    findings = lint_job_tagging_source(source, FIXTURE)
    assert rules_of(findings) == {"SCD007"}
    assert len(findings) == 4
    assert all("carries no job tag" in f.message for f in findings)
    flagged = {f.snippet for f in findings}
    assert any("leaky_transfer" in s or "transfer" in s for s in flagged)
    # tagged calls, the exempt probe and unqualified names stay silent
    assert not any("job=state.spec.job_id" in s for s in flagged)


def test_scd007_occurrence_numbering_keeps_twin_lines_distinct(tmp_path):
    twin = tmp_path / "twins.py"
    twin.write_text(
        "def drain(pool, ready):\n"
        "    pool.schedule(ready, 1.0)\n"
        "    pool.schedule(ready, 1.0)\n")
    findings = lint_job_tagging(roots=[str(twin)])
    assert [f.occurrence for f in findings] == [0, 1]
    assert len({f.fingerprint for f in findings}) == 2


def test_scd007_default_roots_cover_sched_and_network():
    roots = tagging_default_roots()
    assert roots[0].endswith(os.path.join("repro", "sched"))
    assert roots[1].endswith(os.path.join("cluster", "network.py"))
    # the shipped scheduler and shared network are tag-clean
    assert lint_job_tagging() == []


# -- the tampered-log fixture CI replays ------------------------------------------

TAMPERED_LOG = os.path.join(os.path.dirname(__file__), "fixtures",
                            "analysis", "scd_tampered_fleet_log.json")


def test_tampered_fleet_log_fixture_fails_closed():
    with open(TAMPERED_LOG, encoding="utf-8") as handle:
        payload = json.load(handle)
    findings = verify_fleet_log(payload, "<sched:tampered-fixture>")
    assert "SCD001" in rules_of(findings)
    assert "double booking" in messages_of(findings)

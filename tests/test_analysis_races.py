"""Race detector: every RACE rule fires on a fixture, message ordering
suppresses false positives, and all registered schemes are race-free."""

import numpy as np
import pytest

from repro.analysis.races import (
    RACE_RULES,
    analyze_callable,
    analyze_trace,
    verify_races,
)
from repro.analysis.schedule import SchemeCase, trace_case
from repro.collectives import (
    ReduceStats,
    accumulate_chunk,
    declare_buffer,
    store_chunk,
)
from repro.collectives.trace import (
    capture,
    emit_buffer_read,
    emit_buffer_write,
    emit_recv,
    emit_send,
    emit_state_use,
)
from repro.compression import CompressionSpec


def rules_of(findings):
    return {f.rule for f in findings}


def stats_for(buffers, scheme="toy"):
    return ReduceStats(scheme, len(buffers), buffers[0].size)


# -- RACE001: unordered write/write on shared memory --------------------------

def shared_accumulator_allreduce(buffers, compressor, rng, key=""):
    """The textbook bug: every rank += into one buffer, no ordering."""
    total = np.zeros_like(buffers[0])
    for rank in range(len(buffers)):
        accumulate_chunk(total, buffers[rank], rank=rank, tag="shared-acc")
    outs = [total.copy() for _ in range(len(buffers))]
    return outs, stats_for(buffers)


def test_race001_shared_accumulator_flagged():
    findings = analyze_callable(shared_accumulator_allreduce, world=3,
                                scheme="toy")
    assert rules_of(findings) == {"RACE001"}
    # one finding per unordered rank pair: (0,1), (0,2), (1,2)
    assert len(findings) == 3
    for f in findings:
        assert f.source == "race"
        assert f.path == "<race:toy@world=3>"
        assert "no happens-before ordering" in f.message


def test_race001_message_chain_makes_it_clean():
    def token_ring(buffers, compressor, rng, key=""):
        # same shared buffer, but a token message orders every update
        total = np.zeros_like(buffers[0])
        world = len(buffers)
        for rank in range(world):
            if rank > 0:
                emit_recv(rank, rank - 1, 8, step=rank - 1, tag="token")
            accumulate_chunk(total, buffers[rank], rank=rank, tag="acc")
            if rank + 1 < world:
                emit_send(rank, rank + 1, 8, step=rank, tag="token")
        return [total.copy() for _ in range(world)], stats_for(buffers)

    assert analyze_callable(token_ring, world=4, scheme="ok") == []


# -- RACE002: unordered read/write --------------------------------------------

def read_write_allreduce(buffers, compressor, rng, key=""):
    """Rank 1 overwrites a buffer rank 0 is concurrently reading."""
    scratch = buffers[0].copy()
    emit_buffer_read(0, scratch, tag="r0-read")
    store_chunk(scratch, buffers[1], rank=1, tag="r1-write")
    return [b.copy() for b in buffers], stats_for(buffers)


def test_race002_read_write_flagged():
    findings = analyze_callable(read_write_allreduce, world=2, scheme="rw")
    assert rules_of(findings) == {"RACE002"}


def test_race002_send_recv_ordering_suppresses():
    def handoff(buffers, compressor, rng, key=""):
        scratch = buffers[0].copy()
        emit_buffer_read(0, scratch, tag="r0-read")
        emit_send(0, 1, scratch.nbytes, step=0, tag="handoff")
        emit_recv(1, 0, scratch.nbytes, step=0, tag="handoff")
        store_chunk(scratch, buffers[1], rank=1, tag="r1-write")
        return [b.copy() for b in buffers], stats_for(buffers)

    assert analyze_callable(handoff, world=2, scheme="ok") == []


# -- RACE003: keyed state shared across ranks ---------------------------------

def shared_residual_allreduce(buffers, compressor, rng, key=""):
    for rank in range(len(buffers)):
        emit_state_use(rank, ("residual", key), tag="ef")
    return [b.copy() for b in buffers], stats_for(buffers)


def test_race003_shared_state_key_flagged():
    findings = analyze_callable(shared_residual_allreduce, world=2,
                                scheme="state")
    assert rules_of(findings) == {"RACE003"}
    assert any("state key" in f.message for f in findings)


def test_race003_per_rank_keys_clean():
    def per_rank_state(buffers, compressor, rng, key=""):
        for rank in range(len(buffers)):
            emit_state_use(rank, ("residual", key, rank), tag="ef")
        return [b.copy() for b in buffers], stats_for(buffers)

    assert analyze_callable(per_rank_state, world=3, scheme="ok") == []


# -- RACE004: declared rank-local buffers overlap ------------------------------

def test_race004_overlapping_declarations_flagged():
    def aliased_inputs(buffers, compressor, rng, key=""):
        n = buffers[0].size
        big = np.zeros(2 * n, dtype=np.float32)
        declare_buffer(0, big[: n + 4], name="rank0/input")
        declare_buffer(1, big[n:], name="rank1/input")
        return [b.copy() for b in buffers], stats_for(buffers)

    findings = analyze_callable(aliased_inputs, world=2, scheme="alias")
    assert rules_of(findings) == {"RACE004"}
    assert "16 bytes" in findings[0].message  # 4 fp32 elements overlap


def test_race004_disjoint_declarations_clean():
    def disjoint_inputs(buffers, compressor, rng, key=""):
        n = buffers[0].size
        big = np.zeros(2 * n, dtype=np.float32)
        declare_buffer(0, big[:n], name="rank0/input")
        declare_buffer(1, big[n:], name="rank1/input")
        return [b.copy() for b in buffers], stats_for(buffers)

    assert analyze_callable(disjoint_inputs, world=2, scheme="ok") == []


def test_race004_same_rank_overlap_allowed():
    def same_rank_views(buffers, compressor, rng, key=""):
        declare_buffer(0, buffers[0], name="rank0/full")
        declare_buffer(0, buffers[0][:4], name="rank0/head")
        return [b.copy() for b in buffers], stats_for(buffers)

    assert analyze_callable(same_rank_views, world=2, scheme="ok") == []


# -- negative control: deliberately injected aliasing bug ----------------------

def test_injected_aliasing_bug_in_toy_reduction_caught():
    """A plausible-looking toy scheme with a buried aliasing bug.

    Rank 0 "gathers" everyone's contribution into slices of one arena,
    but an off-by-one in the slice arithmetic makes rank 1's slice
    overlap rank 2's, and both write unordered: exactly the class of
    bug the detector exists for.  The numeric output of the simulated
    run is still deterministic — no ordinary test would catch it.
    """

    def buggy_gather_allreduce(buffers, compressor, rng, key=""):
        world = len(buffers)
        n = buffers[0].size
        arena = np.zeros(world * n, dtype=np.float32)
        for rank in range(world):
            start = rank * n - (1 if rank == 2 else 0)  # the bug
            view = arena[start:start + n]
            store_chunk(view, buffers[rank], rank=rank, tag=f"gather/{rank}")
        total = sum(arena[r * n:(r + 1) * n] for r in range(world))
        return [total.copy() for _ in range(world)], stats_for(buffers)

    findings = analyze_callable(buggy_gather_allreduce, world=3,
                                scheme="buggy-gather")
    assert rules_of(findings) == {"RACE001"}
    assert len(findings) == 1  # exactly the ranks the off-by-one aliases
    assert "rank 1" in findings[0].message
    assert "rank 2" in findings[0].message


# -- registered schemes are race-free ------------------------------------------

def test_all_registered_schemes_race_free():
    assert verify_races() == []


@pytest.mark.parametrize("scheme,world", [("sra", 4), ("ring", 4),
                                          ("tree", 5), ("ps", 3),
                                          ("allgather", 3)])
def test_scheme_timeline_has_accesses(scheme, world):
    trace, _ = trace_case(SchemeCase(scheme, world))
    assert trace.accesses, "instrumentation should record buffer accesses"
    assert trace.declared, "inputs should be declared rank-local"
    assert analyze_trace(trace, scheme, world) == []


def test_stateful_compressor_on_real_scheme_clean():
    trace, _ = trace_case(SchemeCase("sra", 4),
                          spec=CompressionSpec("powersgd", rank=4))
    state_accesses = [a for a in trace.accesses if a.space == "state"]
    assert state_accesses, "powersgd warm start should appear as state use"
    assert analyze_trace(trace, "sra", 4) == []


def test_race_rules_table_complete():
    assert set(RACE_RULES) == {f"RACE00{i}" for i in range(1, 5)}


def test_capture_isolated_per_trace():
    with capture() as first:
        emit_buffer_write(0, np.zeros(4, dtype=np.float32), tag="a")
    with capture() as second:
        pass
    assert len(first.accesses) == 1
    assert second.accesses == []


# -- rank_scope composition (the trace hooks behind every scheme trace) --------

def test_nested_rank_scopes_compose_innermost_first():
    """hier nests per-node SRA inside the global call; a demoted
    crash-rejoin schedule nests a quorum scope inside the survivor
    scope — three levels deep the translation must still land on the
    correct global rank."""
    from repro.collectives.trace import rank_scope, translate_rank

    with rank_scope([4, 5, 6, 7]):           # survivors -> global
        with rank_scope([2, 0, 3]):          # quorum -> survivor-local
            assert translate_rank(0) == 6    # 0 -> 2 -> 6
            assert translate_rank(1) == 4    # 1 -> 0 -> 4
            with rank_scope([1]):            # leader -> quorum-local
                assert translate_rank(0) == 4
        assert translate_rank(3) == 7


def test_rank_scope_events_translate_through_all_levels():
    from repro.collectives.trace import rank_scope

    with capture() as trace:
        with rank_scope([3, 1]):
            with rank_scope([1, 0]):
                emit_send(0, 1, 8, step=0, tag="nested")
                emit_recv(1, 0, 8, step=0, tag="nested")
    (send, recv) = trace.events
    assert (send.src, send.dst) == (1, 3)
    assert (recv.src, recv.dst) == (1, 3)


def test_negative_rank_does_not_wrap_through_python_indexing():
    from repro.collectives.trace import rank_scope, translate_rank

    with rank_scope([2, 3]):
        with pytest.raises(IndexError, match="out of range"):
            translate_rank(-1)


def test_out_of_range_rank_names_the_offending_scope():
    from repro.collectives.trace import rank_scope, translate_rank

    with rank_scope([0, 1, 2, 3]):
        with rank_scope([1, 2]):
            with pytest.raises(IndexError, match=r"depth 1 .*\(1, 2\)"):
                translate_rank(2)
    # out of range at the *outer* level: inner map emits a legal local
    # rank whose image the outer scope cannot hold
    with rank_scope([1]):
        with rank_scope([0, 1]):
            with pytest.raises(IndexError, match="depth 2"):
                translate_rank(1)

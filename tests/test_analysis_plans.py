"""Tests for the bit-width plan certifier (BWP001..BWP007)."""

import numpy as np
import pytest

from repro.analysis.plans import (
    DEFAULT_ALPHAS,
    OPTIMALITY_RATCHET,
    PLAN_RULES,
    PlanInstance,
    certify_controller_stability,
    certify_optimality,
    certify_plan_contracts,
    certify_solver,
    default_instances,
    verify_plans,
)
from repro.core import ASSIGNERS, LayerStat
from repro.core.adaptive import AdaptiveController, kmeans_assign

SMALL = PlanInstance("tiny", [
    LayerStat("embed", 1_000_000, 0.4),
    LayerStat("fc", 10_000, 1.0),
    LayerStat("head", 2_048, 2.0),
])


def rules_of(findings):
    return sorted({f.rule for f in findings})


# -- the real repo certifies cleanly ------------------------------------------

def test_real_solvers_certify_clean():
    assert verify_plans() == []


def test_battery_covers_every_model_spec_and_degenerate_corners():
    names = {i.name for i in default_instances()}
    for spec in ("resnet50", "vgg16", "vit", "transformer_xl",
                 "bert", "gpt2"):
        assert f"spec:{spec}" in names
    assert {"zero-norm", "single-layer", "txl-like"} <= names
    assert any(i.small for i in default_instances())


def test_every_rule_has_a_description():
    assert sorted(PLAN_RULES) == [f"BWP00{i}" for i in range(1, 8)]
    assert set(OPTIMALITY_RATCHET) == set(ASSIGNERS)


# -- regression: broken solvers must be caught --------------------------------

def budget_buster(stats, alpha=2.0, bitwidths=None):
    """Assigns 2 bits everywhere: violates any reasonable budget."""
    return {s.name: 2 for s in stats}


def ladder_escaper(stats, alpha=2.0, bitwidths=None):
    """Emits a width outside the requested ladder (and every bucket map)."""
    return {s.name: 9 for s in stats}


def layer_loser(stats, alpha=2.0, bitwidths=None):
    bits = kmeans_assign(stats, alpha=alpha)
    bits.pop(next(iter(bits)))
    return bits


def crasher(stats, alpha=2.0, bitwidths=None):
    raise RuntimeError("solver exploded")


def test_budget_violation_fires_bwp001():
    _, findings = certify_solver("bad", budget_buster, SMALL, alpha=1.5)
    assert "BWP001" in rules_of(findings)


def test_ladder_escape_fires_bwp002_and_bwp004():
    _, findings = certify_solver("bad", ladder_escaper, SMALL, alpha=2.0)
    assert "BWP002" in rules_of(findings)
    assert "BWP004" in rules_of(findings)


def test_lost_layer_fires_bwp002():
    _, findings = certify_solver("bad", layer_loser, SMALL, alpha=2.0)
    assert rules_of(findings) == ["BWP002"]
    assert "covers" in findings[0].message


def test_crashing_solver_fires_bwp002_not_an_exception():
    bits, findings = certify_solver("bad", crasher, SMALL, alpha=2.0)
    assert bits is None
    assert rules_of(findings) == ["BWP002"]
    assert "RuntimeError" in findings[0].message


def test_wasteful_solver_fires_bwp003():
    def wasteful(stats, alpha=2.0, bitwidths=None):
        return {s.name: 8 for s in stats}  # always feasible, never frugal

    findings = certify_optimality("kmeans", wasteful, [SMALL],
                                  alphas=(2.0,))
    assert rules_of(findings) == ["BWP003"]


def test_non_monotone_solver_fires_bwp005():
    def moody(stats, alpha=2.0, bitwidths=None):
        width = 8 if alpha > 2.0 else 4  # more budget -> more bytes
        return {s.name: width for s in stats}

    findings = verify_plans(assigners={"moody": moody}, instances=[SMALL],
                            alphas=(1.5, 3.0), controller_cls=None)
    assert "BWP005" in rules_of(findings)


def test_verify_plans_end_to_end_on_broken_solver():
    findings = verify_plans(assigners={"bad": budget_buster},
                            instances=[SMALL], controller_cls=None)
    assert "BWP001" in rules_of(findings)
    assert all(f.source == "plan" and f.scheme == "bad" for f in findings)
    assert all(f.path == "<plan:bad>" for f in findings)


# -- BWP006: controller respec stability --------------------------------------

def test_stationary_controller_is_stable():
    for solver in ASSIGNERS:
        assert certify_controller_stability(solver) == []


def test_flappy_controller_fires_bwp006():
    class FlappyController(AdaptiveController):
        """Alternates the embedding width every respec."""

        def reassign(self):
            super().reassign()
            self._flip = not getattr(self, "_flip", False)
            if self._flip and self.assignments:
                name = next(iter(self.assignments))
                self.assignments[name] = 8

    findings = certify_controller_stability(
        "kmeans", controller_cls=FlappyController)
    assert "BWP006" in rules_of(findings)
    assert any("flipped" in f.message or "spec" in f.message
               for f in findings)


# -- BWP007: plan/contract agreement ------------------------------------------

def test_plan_bits_match_qsgd_contract():
    bits = kmeans_assign(SMALL.stats, alpha=2.0)
    assert certify_plan_contracts("kmeans", bits, SMALL, 2.0) == []


def test_undeclared_bits_fire_bwp007():
    from repro.analysis.abstract import default_registry
    from repro.compression.contracts import CompressorContract
    from repro.compression.qsgd import QSGDCompressor

    class SilentQSGD(QSGDCompressor):
        contract = CompressorContract("qsgd", uses_rng=True)  # no bits

    registry = dict(default_registry())
    registry["qsgd"] = SilentQSGD
    findings = certify_plan_contracts(
        "kmeans", {"embed": 4}, SMALL, 2.0, registry=registry)
    assert rules_of(findings) == ["BWP007"]
    assert "supported_bits" in findings[0].message


def test_bits_outside_declaration_fire_bwp007():
    findings = certify_plan_contracts("bad", {"embed": 16}, SMALL, 2.0)
    assert rules_of(findings) == ["BWP007"]


def test_unknown_method_fires_bwp007():
    findings = certify_plan_contracts("kmeans", {"embed": 4}, SMALL, 2.0,
                                      method="warpdrive")
    assert rules_of(findings) == ["BWP007"]


# -- determinism --------------------------------------------------------------

def test_verify_plans_is_deterministic():
    first = verify_plans(assigners={"bad": budget_buster},
                         instances=[SMALL], controller_cls=None)
    second = verify_plans(assigners={"bad": budget_buster},
                          instances=[SMALL], controller_cls=None)
    assert [f.fingerprint for f in first] == [f.fingerprint for f in second]


def test_default_alphas_are_sorted_and_span_the_paper_range():
    assert list(DEFAULT_ALPHAS) == sorted(DEFAULT_ALPHAS)
    assert DEFAULT_ALPHAS[0] <= 2.0 <= DEFAULT_ALPHAS[-1]

"""Placement policies: packed / spread / NUMA-aware rank mapping."""

import pytest

from repro.cluster import get_machine, make_cluster
from repro.sched import PLACEMENT_POLICIES, place


def _cluster(nodes=2):
    return make_cluster("rtx3090-8x", nodes)


def _all_free(topo):
    return set(range(topo.n_gpus))


def test_policy_catalog_and_errors():
    topo = _cluster()
    assert set(PLACEMENT_POLICIES) == {"packed", "spread", "numa"}
    with pytest.raises(KeyError):
        place("round-robin", topo, 2, _all_free(topo))
    with pytest.raises(ValueError):
        place("packed", topo, topo.n_gpus + 1, _all_free(topo))


def test_insufficient_free_queues():
    topo = _cluster()
    assert place("packed", topo, 4, {0, 1, 2}) is None
    assert place("spread", topo, 4, {0, 1, 2}) is None


def test_packed_prefers_single_best_fit_node():
    topo = _cluster(2)
    # node 0 has 2 free, node 1 has 8 free: a 2-rank job best-fits node 0
    free = {6, 7} | set(range(8, 16))
    ranks = place("packed", topo, 2, free)
    assert ranks == [6, 7]
    # a 4-rank job no longer fits node 0 and lands on node 1 alone
    ranks = place("packed", topo, 4, free)
    assert all(topo.node_of[g] == 1 for g in ranks)


def test_packed_spills_across_nodes_only_when_forced():
    topo = _cluster(2)
    free = {5, 6, 7} | {8, 9}
    ranks = place("packed", topo, 5, free)
    assert ranks is not None and len(ranks) == 5
    assert {topo.node_of[g] for g in ranks} == {0, 1}


def test_spread_deals_across_nodes():
    topo = _cluster(2)
    ranks = place("spread", topo, 4, _all_free(topo))
    assert ranks is not None
    nodes = [topo.node_of[g] for g in ranks]
    assert nodes.count(0) == 2 and nodes.count(1) == 2


def test_numa_prefers_one_root_complex():
    topo = get_machine("rtx3090-8x").topology()
    groups = {topo.numa_of[g] for g in range(topo.n_gpus)}
    assert len(groups) == 2   # dual-root commodity box
    half = topo.n_gpus // 2
    ranks = place("numa", topo, half, _all_free(topo))
    assert ranks is not None
    assert len({topo.numa_of[g] for g in ranks}) == 1
    # too big for one root: falls back to a packed placement
    ranks = place("numa", topo, half + 1, _all_free(topo))
    assert ranks is not None and len(ranks) == half + 1


def test_placements_are_deterministic():
    topo = _cluster(3)
    free = _all_free(topo)
    for policy in PLACEMENT_POLICIES:
        assert place(policy, topo, 6, set(free)) == \
            place(policy, topo, 6, set(free))


def test_placement_never_reuses_gpus():
    topo = _cluster(2)
    free = _all_free(topo)
    for policy in PLACEMENT_POLICIES:
        taken = place(policy, topo, 6, set(free))
        assert taken is not None and len(set(taken)) == 6
        rest = place(policy, topo, 6, set(free) - set(taken))
        assert rest is not None
        assert not set(taken) & set(rest)

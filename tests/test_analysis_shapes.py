"""Tests for the shape/dtype pipeline interpreter (SHP001..SHP005)."""

import numpy as np
import pytest

from repro.analysis.abstract import default_registry
from repro.analysis.shapes import (
    SCHEME_MODELS,
    SHAPE_RULES,
    SchemeModel,
    battery_specs,
    calibrate_payload_model,
    interpret_pipeline,
    symbolic_payload,
    symbolic_wire_bytes,
    verify_shapes,
)
from repro.compression import CompressionSpec, make_compressor
from repro.core import CGXConfig
from repro.core.serialization import measured_wire_bytes


def rules_of(findings):
    return sorted({f.rule for f in findings})


# -- the real repo interprets cleanly -----------------------------------------

def test_full_battery_is_clean():
    assert verify_shapes() == []


def test_battery_covers_every_registered_method():
    methods = {spec.method for spec in battery_specs()}
    assert methods == set(default_registry())


def test_scheme_models_cover_every_registered_scheme():
    from repro.collectives import ALGORITHMS

    assert set(SCHEME_MODELS) == set(ALGORITHMS)


def test_every_rule_has_a_description():
    assert sorted(SHAPE_RULES) == [f"SHP00{i}" for i in range(1, 6)]


# -- the symbolic payload model matches reality -------------------------------

@pytest.mark.parametrize("spec", battery_specs(),
                         ids=lambda s: f"{s.method}-{s.wire_dtype_bits}"
                         if s.method == "qsgd" else s.method)
@pytest.mark.parametrize("shape", [(97,), (4, 33), (16, 16)])
def test_symbolic_bytes_match_real_serialization(spec, shape):
    rng = np.random.default_rng(3)
    array = rng.normal(size=shape).astype(np.float32)
    compressed = make_compressor(spec).compress(array, rng, key="t")
    assert symbolic_wire_bytes(symbolic_payload(spec, array.size, shape)) \
        == measured_wire_bytes(compressed)


def test_symbolic_payload_zero_elements_is_empty():
    assert symbolic_payload(CompressionSpec("qsgd"), 0) == ()


def test_symbolic_powersgd_dense_fallback_for_flat_buffers():
    spec = CompressionSpec("powersgd", rank=4)
    flat = symbolic_payload(spec, 4096, (4096,))
    assert [s.name for s in flat] == ["dense"]
    matrix = symbolic_payload(spec, 4096, (64, 64))
    assert [s.name for s in matrix] == ["p", "q"]
    assert symbolic_wire_bytes(matrix) < symbolic_wire_bytes(flat)


def test_calibration_pass_is_clean():
    assert calibrate_payload_model() == []


def test_calibration_catches_a_lying_compressor():
    from repro.compression.qsgd import QSGDCompressor

    class Padding(QSGDCompressor):
        def compress(self, array, rng, key=None):
            out = super().compress(array, rng, key=key)
            out.payload["norms"] = np.concatenate(
                [out.payload["norms"], np.zeros(1, dtype=np.float32)])
            return out

        def decompress(self, compressed):
            trimmed = compressed.copy()
            trimmed.payload["norms"] = trimmed.payload["norms"][:-1]
            return super().decompress(trimmed)

    registry = dict(default_registry())
    registry["qsgd"] = Padding
    findings = calibrate_payload_model(registry)
    assert "SHP003" in rules_of(findings)
    assert all(f.path == "<shape:calibration>" for f in findings)


# -- regression: broken pipelines must be caught ------------------------------

class OverclaimingSpec(CompressionSpec):
    """Claims three bytes more than it serializes."""

    def wire_bytes(self, numel, shape=None):
        return super().wire_bytes(numel, shape) + 3


def test_wire_claim_mismatch_fires_shp003_and_shp005():
    findings = verify_shapes(
        models=["vgg16"], specs=[OverclaimingSpec("qsgd", bits=4)],
        worlds=(4,), calibrate=False, include_adaptive=False)
    assert {"SHP003", "SHP005"} <= set(rules_of(findings))


def test_gappy_partition_fires_shp004():
    def gappy(numel, world, node_of):
        half = numel // 2
        return [("gap", [(0, half), (half + 1, numel)])]

    findings = verify_shapes(
        models=["vgg16"], specs=[CompressionSpec("qsgd")],
        schemes={"gap": SchemeModel("gap", gappy)},
        worlds=(4,), calibrate=False, include_adaptive=False)
    assert rules_of(findings) == ["SHP004"]
    assert "contiguous" in findings[0].message


def test_short_partition_fires_shp004():
    def short(numel, world, node_of):
        return [("short", [(0, numel - 1)])]

    findings = verify_shapes(
        models=["vgg16"], specs=[CompressionSpec("none")],
        schemes={"short": SchemeModel("short", short)},
        worlds=(4,), calibrate=False, include_adaptive=False)
    assert rules_of(findings) == ["SHP004"]


def test_shattering_partition_fires_metadata_inflation():
    # 64-element chunks for 4 ranks: every chunk pays the max(1, ...)
    # sparsifier floor, and the chunk count is unmoored from the world
    from types import SimpleNamespace

    from repro.analysis.shapes import _check_chunks

    package = SimpleNamespace(name="fc", numel=100_000,
                              spec=CompressionSpec("topk", density=0.001))

    def shatter(numel, world, node_of):
        return [("shatter", [(i, min(i + 64, numel))
                             for i in range(0, numel, 64)])]

    findings = _check_chunks("tiny", package,
                             SchemeModel("shatter", shatter),
                             4, "topk", None)
    assert "SHP004" in rules_of(findings)
    assert any("inflates" in f.message for f in findings)


def test_fp16_accumulator_fires_shp002():
    def whole(numel, world, node_of):
        return [("w", [(0, numel)])]

    narrow = {"half": SchemeModel("half", whole,
                                  accumulator_dtype="float16")}
    findings = verify_shapes(
        models=["vgg16"], specs=[CompressionSpec("qsgd")], schemes=narrow,
        worlds=(4,), calibrate=False, include_adaptive=False)
    assert "SHP002" in rules_of(findings)


def test_narrowing_contract_fires_shp002():
    from repro.compression.contracts import CompressorContract
    from repro.compression.qsgd import QSGDCompressor

    class NarrowQSGD(QSGDCompressor):
        contract = CompressorContract("qsgd", uses_rng=True,
                                      output_dtype="float16",
                                      supported_bits=(2, 3, 4, 5, 6, 7, 8))

    registry = dict(default_registry())
    registry["qsgd"] = NarrowQSGD
    findings = verify_shapes(
        models=["vgg16"], specs=[CompressionSpec("qsgd")],
        registry=registry, worlds=(4,), calibrate=False,
        include_adaptive=False)
    assert "SHP002" in rules_of(findings)


def test_dropped_tensor_fires_shp001():
    import dataclasses

    from repro.analysis.shapes import _check_plan
    from repro.core import CommunicationEngine
    from repro.models import build_spec

    model = build_spec("vgg16")
    truncated = dataclasses.replace(model, tensors=model.tensors[:-1])
    config = CGXConfig(compression=CompressionSpec("qsgd"))
    # sanity: the untruncated plan is clean
    assert interpret_pipeline("vgg16", config, worlds=(4,),
                              model=model) == []
    # plan built from the truncated model: the final tensor never gets
    # a package
    engine = CommunicationEngine(config)
    packages = engine.plan(truncated.layer_infos())
    findings = _check_plan("vgg16", model, packages, "qsgd",
                           default_registry())
    assert "SHP001" in rules_of(findings)
    assert any("drops" in f.message for f in findings)


# -- chunk math matches the real collectives ----------------------------------

@pytest.mark.parametrize("scheme", sorted(SCHEME_MODELS))
@pytest.mark.parametrize("world", [2, 4, 5])
def test_partitions_match_collectives_chunking(scheme, world):
    from repro.collectives.base import chunk_bounds

    numel = 100_003
    node_of = [r // 2 for r in range(world)] if scheme == "hier" else None
    for phase, bounds in SCHEME_MODELS[scheme].phases(numel, world, node_of):
        n = len(bounds)
        if n > 1:  # chunked phases must mirror chunk_bounds exactly
            assert bounds == chunk_bounds(numel, n), (scheme, phase)
        assert bounds[0][0] == 0 and bounds[-1][1] == numel


def test_hier_degrades_to_sra_on_one_node():
    flat = SCHEME_MODELS["hier"].phases(1000, 4, None)
    sra = SCHEME_MODELS["sra"].phases(1000, 4, None)
    assert flat == sra


def test_adaptive_config_battery_is_clean():
    findings = verify_shapes(models=[], calibrate=False,
                             include_adaptive=True)
    assert findings == []


def test_findings_carry_shape_source_and_world():
    findings = verify_shapes(
        models=["vgg16"], specs=[OverclaimingSpec("qsgd", bits=4)],
        worlds=(4,), calibrate=False, include_adaptive=False)
    sample = findings[0]
    assert sample.source == "shape"
    assert sample.path == "<shape:vgg16>"
    assert all(f.world in (0, 4) for f in findings)

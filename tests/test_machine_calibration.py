"""Cross-cutting calibration tests: the simulator against the paper's
published measurements, end to end."""

import pytest

from repro.cluster import get_machine
from repro.collectives import time_allreduce
from repro.compression import CompressionSpec
from repro.core import CGXConfig
from repro.models import build_spec
from repro.training import simulate_machine_step


def test_paper_table4_absolute_numbers():
    """The three BERT-QA cloud rows land within 30% of the paper."""
    paper = {"genesis-nccl": 4737, "aws-nccl": 14407, "genesis-cgx": 14171}
    spec = build_spec("bert")
    genesis = get_machine("genesis-4x3090")
    aws = get_machine("aws-p3.8xlarge")
    measured = {
        "genesis-nccl": simulate_machine_step(
            genesis, spec, CGXConfig.baseline_nccl(),
            plan_mode="fused").throughput,
        "aws-nccl": simulate_machine_step(
            aws, spec, CGXConfig.baseline_nccl(),
            plan_mode="fused").throughput,
        "genesis-cgx": simulate_machine_step(
            genesis, spec, CGXConfig.cgx_default()).throughput,
    }
    for name, value in paper.items():
        assert measured[name] == pytest.approx(value, rel=0.30), name


def test_paper_table6_cgx_rows():
    """CGX throughput on 8x3090 within 35% of Table 6 for TXL and BERT."""
    machine = get_machine("rtx3090-8x")
    paper = {"transformer_xl": 260_000, "bert": 38_700}
    for model, value in paper.items():
        t = simulate_machine_step(machine, build_spec(model),
                                  CGXConfig.cgx_default())
        assert t.throughput == pytest.approx(value, rel=0.35), model


def test_paper_allreduce_bandwidth_collapse():
    """Section 6.1: 13-16 GB/s point-to-point but ~1 GB/s all-reduce."""
    machine = get_machine("rtx3090-8x")
    p2p = machine.topology().path_bandwidth(0, 1)
    assert 13e9 <= p2p <= 16e9
    net = machine.network("nccl")
    numel = 187_500_000
    timing = time_allreduce(net, list(range(8)), numel,
                            CompressionSpec("none"), "ring")
    allreduce_bw = numel * 4 / timing.end
    assert allreduce_bw < p2p / 8  # an order-of-magnitude collapse
    assert 0.5e9 < allreduce_bw < 2e9


def test_paper_2080_bandwidth_band():
    """Section 6.1: 6-8 GB/s GPU-to-GPU on the RTX 2080 machine."""
    machine = get_machine("rtx2080-8x")
    p2p = machine.topology().path_bandwidth(0, 1)
    assert 6e9 <= p2p <= 8e9


def test_single_gpu_anchor_consistency_all_gpus():
    """Every (GPU, anchor-model) pair in Table 1 reproduces to <1%."""
    from repro.cluster import GPUS

    anchors = {
        ("V100", "resnet50"): 1226, ("V100", "transformer_xl"): 37_000,
        ("A6000", "resnet50"): 566, ("A6000", "transformer_xl"): 39_000,
        ("RTX3090", "resnet50"): 850, ("RTX3090", "transformer_xl"): 39_000,
        ("RTX2080Ti", "resnet50"): 484,
        ("RTX2080Ti", "transformer_xl"): 13_000,
    }
    for (gpu_name, model), expected in anchors.items():
        gpu = GPUS[gpu_name]
        spec = build_spec(model)
        step = gpu.step_compute_time(spec, 16)
        throughput = 16 * spec.items_per_sample / step
        assert throughput == pytest.approx(expected, rel=0.01), (gpu_name,
                                                                 model)

"""Tests for configuration (de)serialization and determinism."""

import numpy as np
import pytest

from repro.compression import CompressionSpec
from repro.core import CGXConfig
from repro.core.serialization import (
    config_from_dict,
    config_to_dict,
    dump_config,
    load_config,
    spec_from_dict,
    spec_to_dict,
)


def test_spec_roundtrip_defaults_elided():
    spec = CompressionSpec("qsgd", bits=4, bucket_size=128)
    data = spec_to_dict(spec)
    assert "density" not in data  # default values omitted
    assert spec_from_dict(data) == spec


@pytest.mark.parametrize("spec", [
    CompressionSpec("none"),
    CompressionSpec("qsgd", bits=2, bucket_size=64, scaling="l2"),
    CompressionSpec("topk", density=0.05, error_feedback=True),
    CompressionSpec("powersgd", rank=8),
    CompressionSpec("nuq", bits=6, bucket_size=256),
    CompressionSpec("fake", ratio=100),
    CompressionSpec("onebit", bucket_size=32),
    CompressionSpec("dgc", density=0.02),
])
def test_spec_roundtrip_all_methods(spec):
    assert spec_from_dict(spec_to_dict(spec)) == spec


def test_spec_rejects_unknown_field():
    with pytest.raises(KeyError):
        spec_from_dict({"method": "qsgd", "compression_level": 9})


def test_config_roundtrip_with_overrides():
    config = CGXConfig.cgx_default()
    config.per_layer["embed.weight"] = CompressionSpec("qsgd", bits=2,
                                                       bucket_size=64)
    config.scheme = "hier"
    config.cross_barrier = True
    restored = config_from_dict(config_to_dict(config))
    assert restored.scheme == "hier"
    assert restored.cross_barrier
    assert restored.compression == config.compression
    assert restored.per_layer == config.per_layer
    assert restored.filtered_keywords == config.filtered_keywords


def test_config_rejects_unknown_field():
    with pytest.raises(KeyError):
        config_from_dict({"backend": "shm", "gpu_count": 8})


def test_file_roundtrip(tmp_path):
    config = CGXConfig.baseline_nccl()
    path = tmp_path / "config.json"
    dump_config(config, str(path))
    restored = load_config(str(path))
    assert config_to_dict(restored) == config_to_dict(config)
    # it's actual JSON on disk
    import json

    json.loads(path.read_text())


def test_restored_config_behaves_identically():
    """A config surviving a JSON round trip drives the engine to the
    exact same reduction results."""
    from repro.core import CommunicationEngine

    config = CGXConfig.cgx_default()
    config.per_layer["b.weight"] = CompressionSpec("topk", density=0.2)
    restored = config_from_dict(config_to_dict(config))

    grads = [{
        "a.weight": np.random.default_rng(w).normal(size=300)
        .astype(np.float32),
        "b.weight": np.random.default_rng(w + 10).normal(size=300)
        .astype(np.float32),
    } for w in range(2)]
    out_a, _ = CommunicationEngine(config).reduce(
        grads, np.random.default_rng(0))
    out_b, _ = CommunicationEngine(restored).reduce(
        grads, np.random.default_rng(0))
    for name in grads[0]:
        np.testing.assert_array_equal(out_a[0][name], out_b[0][name])


def test_training_is_seed_deterministic():
    """Same seed, same config -> bit-identical training outcomes."""
    from repro.core import CGXConfig as Cfg
    from repro.training import train_family

    a = train_family("mlp", world_size=2, config=Cfg.cgx_default(),
                     steps=25, eval_every=25, seed=9)
    b = train_family("mlp", world_size=2, config=Cfg.cgx_default(),
                     steps=25, eval_every=25, seed=9)
    assert a.final_metric == b.final_metric
    assert a.final_loss == b.final_loss
    assert a.wire_bytes_total == b.wire_bytes_total


def test_simulation_is_deterministic():
    from repro.cluster import get_machine
    from repro.models import build_spec
    from repro.training import simulate_machine_step

    machine = get_machine("rtx3090-8x")
    spec = build_spec("vit")
    a = simulate_machine_step(machine, spec, CGXConfig.cgx_default())
    b = simulate_machine_step(machine, spec, CGXConfig.cgx_default())
    assert a.step_time == b.step_time
    assert a.wire_bytes == b.wire_bytes

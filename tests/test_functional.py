"""Unit tests for the primitive ops and their backward rules."""

import numpy as np
import pytest

from repro.nn import functional as F


def numeric_grad(fn, x, eps=1e-4):
    """Central-difference gradient of a scalar-valued fn."""
    grad = np.zeros_like(x)
    flat = x.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn(x)
        flat[i] = orig - eps
        lo = fn(x)
        flat[i] = orig
        grad_flat[i] = (hi - lo) / (2 * eps)
    return grad


@pytest.mark.parametrize("name,fwd,bwd,use_out", [
    ("relu", F.relu, F.relu_backward, False),
    ("gelu", F.gelu, F.gelu_backward, False),
    ("tanh", F.tanh, F.tanh_backward, True),
    ("sigmoid", F.sigmoid, F.sigmoid_backward, True),
])
def test_activation_gradients(name, fwd, bwd, use_out):
    rng = np.random.default_rng(0)
    x = rng.normal(size=(4, 5)).astype(np.float64) + 0.1  # avoid relu kink
    upstream = rng.normal(size=x.shape)
    out = fwd(x)
    analytic = bwd(upstream, out if use_out else x)
    numeric = numeric_grad(lambda v: float(np.sum(fwd(v) * upstream)), x.copy())
    np.testing.assert_allclose(analytic, numeric, rtol=1e-3, atol=1e-5)


def test_relu_zeroes_negatives():
    x = np.array([-2.0, -0.5, 0.0, 0.5, 2.0])
    np.testing.assert_array_equal(F.relu(x), [0, 0, 0, 0.5, 2.0])


def test_sigmoid_extreme_values_stable():
    x = np.array([-1000.0, 1000.0])
    out = F.sigmoid(x)
    assert np.all(np.isfinite(out))
    np.testing.assert_allclose(out, [0.0, 1.0], atol=1e-12)


def test_softmax_rows_sum_to_one():
    rng = np.random.default_rng(1)
    x = rng.normal(scale=10, size=(8, 16))
    out = F.softmax(x)
    np.testing.assert_allclose(out.sum(axis=-1), np.ones(8), rtol=1e-6)
    assert np.all(out >= 0)


def test_softmax_shift_invariance():
    rng = np.random.default_rng(2)
    x = rng.normal(size=(3, 7))
    np.testing.assert_allclose(F.softmax(x), F.softmax(x + 100.0), rtol=1e-6)


def test_softmax_backward_matches_numeric():
    rng = np.random.default_rng(3)
    x = rng.normal(size=(2, 5))
    upstream = rng.normal(size=x.shape)
    out = F.softmax(x)
    analytic = F.softmax_backward(upstream, out)
    numeric = numeric_grad(
        lambda v: float(np.sum(F.softmax(v) * upstream)), x.copy()
    )
    np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-7)


def test_log_softmax_matches_log_of_softmax():
    rng = np.random.default_rng(4)
    x = rng.normal(size=(4, 6))
    np.testing.assert_allclose(F.log_softmax(x), np.log(F.softmax(x)),
                               rtol=1e-6)


def test_im2col_known_values():
    x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
    cols, out_h, out_w = F.im2col(x, 2, 2, stride=2, padding=0)
    assert (out_h, out_w) == (2, 2)
    # first column = top-left 2x2 patch flattened
    np.testing.assert_array_equal(cols[0, :, 0], [0, 1, 4, 5])
    np.testing.assert_array_equal(cols[0, :, 3], [10, 11, 14, 15])


def test_im2col_with_padding_shape():
    x = np.ones((2, 3, 5, 5), dtype=np.float32)
    cols, out_h, out_w = F.im2col(x, 3, 3, stride=1, padding=1)
    assert (out_h, out_w) == (5, 5)
    assert cols.shape == (2, 3 * 9, 25)


def test_col2im_adjointness():
    """col2im is the adjoint of im2col: <im2col(x), y> == <x, col2im(y)>."""
    rng = np.random.default_rng(5)
    x = rng.normal(size=(2, 3, 6, 6)).astype(np.float32)
    cols, _, _ = F.im2col(x, 3, 3, stride=1, padding=1)
    y = rng.normal(size=cols.shape).astype(np.float32)
    back = F.col2im(y, x.shape, 3, 3, stride=1, padding=1)
    lhs = float(np.sum(cols * y))
    rhs = float(np.sum(x * back))
    assert abs(lhs - rhs) / max(abs(lhs), 1e-9) < 1e-5


def test_gelu_matches_reference_points():
    # gelu(0) == 0 and gelu is close to identity for large positive x
    assert F.gelu(np.array([0.0]))[0] == 0.0
    np.testing.assert_allclose(F.gelu(np.array([10.0]))[0], 10.0, rtol=1e-5)

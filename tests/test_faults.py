"""Unit tests for the repro.faults subsystem: plans, policies, the
data-path channel, the timed FaultyNetwork, engine/trainer integration,
and the satellite fixes that rode along with it."""

import numpy as np
import pytest

from repro.cluster import Network, nvlink_mesh
from repro.collectives import allreduce
from repro.collectives.partial import PartialAllreduce
from repro.compression import CompressionSpec, make_compressor
from repro.core import CGXConfig, CommunicationEngine
from repro.faults import (
    CAMPAIGNS,
    FaultBudgetExceeded,
    FaultEvent,
    FaultPlan,
    FaultyNetwork,
    LinkDownError,
    PlanRuntime,
    ResiliencePolicy,
    corrupt_payload,
    crash,
    inject_data_path,
    link_outage,
    link_slowdown,
    make_campaign,
    message_loss,
    payload_corruption,
    payload_crc,
    plan_fallback,
    select_participants,
    straggler,
)
from repro.training import train_family
from repro.training.recipes import get_recipe
from repro.training.tasks import make_task
from repro.training.trainer import DataParallelTrainer


def make_buffers(world, numel=257, seed=0):
    return [np.random.default_rng(seed + i).normal(size=numel)
            .astype(np.float32) for i in range(world)]


def lossy_plan(world=4, seed=0, p_loss=0.3, p_corrupt=0.0):
    events = []
    if p_loss:
        events.append(message_loss(0, None, probability=p_loss))
    if p_corrupt:
        events.append(payload_corruption(0, None, probability=p_corrupt))
    return FaultPlan("test-lossy", world, seed, tuple(events))


# -- plans -------------------------------------------------------------------

def test_event_windows():
    event = straggler(2, 5, rank=0, factor=1.5)
    assert not event.active(1)
    assert event.active(2) and event.active(4)
    assert not event.active(5)
    persistent = straggler(3, None, rank=0, factor=1.5)
    assert persistent.active(10_000)


def test_event_validation():
    with pytest.raises(ValueError):
        FaultEvent("melted", 0)
    with pytest.raises(ValueError):
        straggler(5, 2, rank=0, factor=1.5)       # stop <= start
    with pytest.raises(ValueError):
        straggler(0, None, rank=0, factor=0.5)    # speedup is not a fault
    with pytest.raises(ValueError):
        message_loss(0, None, probability=1.0)    # certain loss never ends
    with pytest.raises(ValueError):
        FaultEvent("crash", 0)                    # rank required


def test_plan_rejects_out_of_range_ranks():
    with pytest.raises(ValueError):
        FaultPlan("bad", 4, 0, (straggler(0, None, rank=7, factor=2.0),))


def test_plan_round_trips_through_dict():
    plan = make_campaign("crash-rejoin", world=4, seed=3)
    clone = FaultPlan.from_dict(plan.to_dict())
    assert clone == plan


def test_step_faults_queries():
    plan = FaultPlan("q", 4, 0, (
        straggler(0, None, rank=1, factor=1.5),
        straggler(0, None, rank=1, factor=2.0),
        message_loss(0, None, probability=0.5, src=0, dst=1),
        message_loss(0, None, probability=0.5, src=0, dst=1),
        link_outage(0, None, src=2, dst=3),
    ))
    faults = plan.at_step(0)
    assert faults.compute_scale(1) == 3.0          # factors multiply
    assert faults.compute_scale(0) == 1.0
    assert faults.loss_probability(0, 1) == 0.75   # independent hazards
    assert faults.loss_probability(1, 0) == 0.0    # message faults directed
    assert faults.route_down(2, 3) and faults.route_down(3, 2)  # links aren't
    assert not faults.route_down(0, 3)


def test_campaigns_registry():
    assert set(CAMPAIGNS) == {"straggler", "lossy-link", "crash-rejoin",
                              "spot-churn", "autoscale-burst"}
    with pytest.raises(KeyError):
        make_campaign("volcano")
    for name in CAMPAIGNS:
        plan = make_campaign(name, world=4, seed=1)
        assert plan.world == 4 and plan.seed == 1


def test_runtime_logs_crash_and_rejoin_edges():
    plan = FaultPlan("edges", 4, 0, (crash(rank=3, at=2, rejoin=4),))
    runtime = PlanRuntime(plan)
    for step in range(1, 6):
        runtime.advance(step)
    kinds = [r.kind for r in runtime.records]
    assert kinds == ["crash", "rejoin"]
    assert runtime.counters.crashes == 1
    assert runtime.counters.rejoins == 1
    assert runtime.counters.crashed_steps == 2    # steps 2 and 3


# -- policy ------------------------------------------------------------------

def test_backoff_is_exponential():
    policy = ResiliencePolicy(backoff_base=1e-3, backoff_factor=2.0)
    assert policy.backoff(1) == 1e-3
    assert policy.backoff(3) == 4e-3


def test_policy_validation():
    with pytest.raises(ValueError):
        ResiliencePolicy(max_retries=-1)
    with pytest.raises(ValueError):
        ResiliencePolicy(min_quorum_fraction=0.0)
    with pytest.raises(ValueError):
        ResiliencePolicy(straggler_budget=0.5)


def test_select_participants_excludes_dead_and_demotes_stragglers():
    plan = FaultPlan("sel", 4, 0, (
        crash(rank=2, at=0),
        straggler(0, None, rank=3, factor=3.0),
    ))
    kept = select_participants(plan.at_step(0), ResiliencePolicy())
    assert kept == [0, 1]


def test_select_participants_respects_quorum_floor():
    # every live rank is over budget; the floor re-admits the least slow
    plan = FaultPlan("floor", 4, 0, tuple(
        straggler(0, None, rank=r, factor=2.5 + r) for r in range(4)))
    kept = select_participants(plan.at_step(0), ResiliencePolicy())
    assert kept == [0, 1]   # ceil(0.5 * 4) = 2, slowest dropped first


def test_plan_fallback_ok_without_outages():
    plan = lossy_plan()
    assert plan_fallback(plan.at_step(0), [0, 1, 2, 3]) == ("ok", [0, 1, 2, 3])


def test_plan_fallback_reroutes_around_single_downed_pair():
    plan = FaultPlan("pair", 4, 0, (link_outage(0, None, src=0, dst=3),))
    decision, order = plan_fallback(plan.at_step(0), [0, 1, 2, 3])
    assert decision == "reroute"
    assert sorted(order) == [0, 1, 2, 3]
    faults = plan.at_step(0)
    for a, b in zip(order, order[1:] + order[:1]):
        assert not faults.route_down(a, b)


def test_plan_fallback_quorum_when_rank_isolated():
    plan = FaultPlan("isolate", 4, 0, (link_outage(0, None, src=2),))
    decision, members = plan_fallback(plan.at_step(0), [0, 1, 2, 3])
    assert (decision, members) == ("quorum", [0, 1, 3])


# -- data-path channel -------------------------------------------------------

def test_corrupt_payload_flips_exactly_one_byte():
    comp = make_compressor(CompressionSpec("qsgd", bits=4))
    wire = comp.compress(np.ones(64, dtype=np.float32),
                         np.random.default_rng(0))
    crc = payload_crc(wire)
    bad = corrupt_payload(wire, np.random.default_rng(1))
    assert payload_crc(bad) != crc
    assert payload_crc(wire) == crc               # original untouched


@pytest.mark.parametrize("scheme", ["sra", "ring", "tree", "allgather", "ps"])
def test_lossy_channel_still_reduces_exactly(scheme):
    world = 4
    bufs = make_buffers(world)
    exact = np.sum(bufs, axis=0, dtype=np.float64)
    runtime = PlanRuntime(lossy_plan(world, p_loss=0.3, p_corrupt=0.1))
    with inject_data_path(runtime):
        outs, stats = allreduce(scheme, bufs,
                                make_compressor(CompressionSpec()),
                                np.random.default_rng(0))
    for out in outs:
        np.testing.assert_allclose(out, exact, rtol=1e-4, atol=1e-4)
    assert runtime.counters.lost > 0
    assert runtime.counters.retries > 0
    assert runtime.counters.corrupt_delivered == 0
    assert stats.retries == runtime.counters.retries
    assert stats.retransmit_bytes == runtime.counters.retransmit_bytes


def test_retransmits_add_wire_bytes():
    world = 4
    bufs = make_buffers(world)
    comp = make_compressor(CompressionSpec())

    clean_outs, clean = allreduce("sra", bufs, comp,
                                  np.random.default_rng(0))
    runtime = PlanRuntime(lossy_plan(world, p_loss=0.4))
    with inject_data_path(runtime):
        outs, faulty = allreduce("sra", bufs, comp,
                                 np.random.default_rng(0))
    assert faulty.retransmit_bytes > 0
    assert faulty.wire_bytes == clean.wire_bytes + faulty.retransmit_bytes
    for a, b in zip(outs, clean_outs):
        np.testing.assert_array_equal(a, b)


def test_corruption_without_crc_is_delivered():
    world = 4
    bufs = make_buffers(world)
    runtime = PlanRuntime(lossy_plan(world, p_loss=0.0, p_corrupt=0.5),
                          ResiliencePolicy(crc_check=False))
    with inject_data_path(runtime):
        outs, _ = allreduce("sra", bufs,
                            make_compressor(CompressionSpec("qsgd", bits=4)),
                            np.random.default_rng(0))
    assert runtime.counters.corrupt_delivered > 0
    assert runtime.counters.corrupt_detected == 0
    # replicas still agree: broadcasts decode one canonical wire copy
    for out in outs[1:]:
        np.testing.assert_array_equal(out, outs[0])


def test_strict_policy_raises_when_budget_exhausted():
    world = 4
    bufs = make_buffers(world)
    runtime = PlanRuntime(lossy_plan(world, p_loss=0.95),
                          ResiliencePolicy(max_retries=1, strict=True))
    with inject_data_path(runtime), pytest.raises(FaultBudgetExceeded):
        allreduce("sra", bufs, make_compressor(CompressionSpec()),
                  np.random.default_rng(0))


def test_nonstrict_budget_forces_delivery_through():
    world = 4
    bufs = make_buffers(world)
    exact = np.sum(bufs, axis=0, dtype=np.float64)
    runtime = PlanRuntime(lossy_plan(world, p_loss=0.95),
                          ResiliencePolicy(max_retries=1, strict=False))
    with inject_data_path(runtime):
        outs, _ = allreduce("sra", bufs, make_compressor(CompressionSpec()),
                            np.random.default_rng(0))
    assert runtime.counters.forced_deliveries > 0
    for out in outs:
        np.testing.assert_allclose(out, exact, rtol=1e-4, atol=1e-4)


def test_channel_determinism_byte_identical_logs():
    logs = []
    for _ in range(2):
        runtime = PlanRuntime(lossy_plan(4, seed=7, p_loss=0.3,
                                         p_corrupt=0.1))
        bufs = make_buffers(4)
        with inject_data_path(runtime):
            for step in range(3):
                runtime.advance(step)
                allreduce("sra", bufs, make_compressor(CompressionSpec()),
                          np.random.default_rng(0))
        logs.append(runtime.log_bytes())
    assert logs[0] == logs[1]


# -- timed network -----------------------------------------------------------

def test_faulty_network_slowdown_stretches_transfers():
    topo = nvlink_mesh(4)
    plan = FaultPlan("slow", 4, 0,
                     (link_slowdown(0, None, factor=3.0, src=0, dst=1),))
    healthy = Network(topo)
    slow = FaultyNetwork(topo, "shm", PlanRuntime(plan))
    nbytes = 1 << 20
    assert slow.transfer(0, 1, nbytes, 0.0) > healthy.transfer(0, 1, nbytes,
                                                               0.0)
    # unaffected routes keep healthy timing
    assert slow.transfer(2, 3, nbytes, 0.0) \
        == healthy.transfer(2, 3, nbytes, 0.0)


def test_faulty_network_raises_on_downed_route():
    plan = FaultPlan("down", 4, 0, (link_outage(0, None, src=0, dst=1),))
    net = FaultyNetwork(nvlink_mesh(4), "shm", PlanRuntime(plan))
    with pytest.raises(LinkDownError):
        net.transfer(0, 1, 1 << 20, 0.0)
    assert net.transfer(0, 2, 1 << 20, 0.0) > 0.0


def test_faulty_network_lossy_route_retries_with_backoff():
    plan = FaultPlan("retry", 4, 3,
                     (message_loss(0, None, probability=0.9, src=0, dst=1),))
    runtime = PlanRuntime(plan)
    net = FaultyNetwork(nvlink_mesh(4), "shm", runtime)
    healthy_end = Network(nvlink_mesh(4)).transfer(0, 1, 1 << 20, 0.0)
    end = net.transfer(0, 1, 1 << 20, 0.0)
    assert end > healthy_end
    assert runtime.counters.retries > 0


def test_faulty_network_scales_straggler_kernels():
    plan = FaultPlan("strag", 4, 0,
                     (straggler(0, None, rank=2, factor=2.0),))
    net = FaultyNetwork(nvlink_mesh(4), "shm", PlanRuntime(plan))
    fast = net.run_kernel(0, "compress", 1e-3, 0.0)
    slowed = net.run_kernel(2, "compress", 1e-3, 0.0)
    assert slowed == pytest.approx(2.0 * fast)


# -- engine + trainer --------------------------------------------------------

def _grads(world, seed=0):
    rng = np.random.default_rng(seed)
    shapes = {"w": (8, 8), "b": (8,)}
    return [{name: rng.normal(size=shape).astype(np.float32)
             for name, shape in shapes.items()} for _ in range(world)]


def test_engine_quorum_reduce_conserves_mass():
    engine = CommunicationEngine(CGXConfig(compression=CompressionSpec()))
    world = 4
    rng = np.random.default_rng(0)
    grads = _grads(world)
    total = {name: np.zeros_like(grads[0][name]) for name in grads[0]}
    # degraded step (rank 3 missing) followed by full steps: carries
    # drain and the long-run sum matches full synchronization.
    outs, report = engine.reduce(grads, rng, participants=[0, 1, 2],
                                 average=False)
    assert report.quorum_world == 3
    for name in total:
        total[name] += outs[0][name]
    outs, report = engine.reduce(grads, rng, average=False)
    assert report.quorum_world is None
    for name in total:
        total[name] += outs[0][name]
    expected = {name: 2.0 * np.sum([g[name] for g in grads], axis=0)
                for name in grads[0]}
    for name in total:
        np.testing.assert_allclose(total[name], expected[name],
                                   rtol=1e-4, atol=1e-4)


def test_trainer_rejects_mismatched_plan_world():
    recipe = get_recipe("mlp")
    task = make_task("mlp", batch_size=recipe.batch_size, **recipe.kwargs())
    with pytest.raises(ValueError):
        DataParallelTrainer(task, world_size=4,
                            fault_plan=make_campaign("straggler", world=8))


def test_trainer_crash_rejoin_counters_and_convergence():
    config = CGXConfig(compression=CompressionSpec("qsgd", bits=4))
    clean = train_family("mlp", world_size=4, config=config, steps=20, seed=0)
    faulty = train_family("mlp", world_size=4, config=config, steps=20,
                          seed=0, fault_plan=make_campaign("crash-rejoin"))
    summary = faulty.fault_summary
    assert summary["crashes"] == 1
    assert summary["rejoins"] == 1
    assert summary["checkpoint_restores"] >= 1   # peer state adoption
    assert abs(faulty.final_loss - clean.final_loss) < 0.02


def test_trainer_checkpoint_restore_round_trip():
    recipe = get_recipe("mlp")
    task = make_task("mlp", batch_size=recipe.batch_size, **recipe.kwargs())
    config = CGXConfig(compression=CompressionSpec("qsgd", bits=4))
    trainer = DataParallelTrainer(task, world_size=2, config=config, seed=0)
    for _ in range(3):
        trainer.train_step()
    snapshot = trainer.checkpoint()
    before = {name: param.data.copy()
              for name, param in trainer.replicas[0].named_parameters()}
    for _ in range(3):
        trainer.train_step()
    trainer.restore(snapshot)
    assert trainer._step_index == snapshot["step"]
    for replica in trainer.replicas:
        for name, param in replica.named_parameters():
            np.testing.assert_array_equal(param.data, before[name])


def test_training_determinism_under_faults():
    config = CGXConfig(compression=CompressionSpec("qsgd", bits=4))
    results = [
        train_family("mlp", world_size=4, config=config, steps=12, seed=0,
                     fault_plan=make_campaign("lossy-link", seed=5))
        for _ in range(2)
    ]
    assert results[0].final_loss == results[1].final_loss
    assert results[0].fault_summary == results[1].fault_summary


# -- satellite fixes ---------------------------------------------------------

def test_partial_full_participation_skips_late_broadcast():
    world = 4
    bufs = make_buffers(world)
    exact = np.sum(bufs, axis=0, dtype=np.float64)
    reducer = PartialAllreduce(world)
    comp = make_compressor(CompressionSpec())
    outs, stats = reducer.reduce(bufs, list(range(world)), comp,
                                 np.random.default_rng(0))
    for out in outs:
        np.testing.assert_allclose(out, exact, rtol=1e-4, atol=1e-4)
    # no laggards: no late-broadcast re-encode, so the recompression
    # depth stays at the plain SRA bound
    assert stats.max_recompressions == 2
    assert not reducer.has_carries()


def test_measure_p2p_bandwidth_is_side_effect_free():
    net = Network(nvlink_mesh(4))
    net.enable_trace()
    end1 = net.transfer(0, 1, 1 << 20, 0.0)
    bw = net.measure_p2p_bandwidth(0, 1)
    assert bw > 0
    # neither the trace nor the busy timelines were clobbered
    assert len(net.trace) == 1
    reference = Network(nvlink_mesh(4))
    reference.transfer(0, 1, 1 << 20, 0.0)
    assert net.transfer(0, 1, 1 << 20, end1) \
        == reference.transfer(0, 1, 1 << 20, end1)


# -- PR 5 satellites: policy hardening + counters ----------------------------

def test_backoff_is_capped():
    policy = ResiliencePolicy(backoff_base=1e-3, backoff_factor=2.0,
                              backoff_max=5e-3)
    # exponential until the cap, then flat
    assert policy.backoff(3) == 4e-3
    assert policy.backoff(4) == 5e-3
    assert policy.backoff(50) == 5e-3
    # the default cap never kicks in for the first few attempts
    assert ResiliencePolicy().backoff(3) == 4e-3


def test_policy_validates_timing_knobs():
    for kwargs in ({"timeout": 0.0}, {"timeout": -1.0},
                   {"backoff_base": 0.0}, {"backoff_factor": -2.0},
                   {"backoff_max": 0.0},
                   {"backoff_base": 1e-2, "backoff_max": 1e-3}):
        with pytest.raises(ValueError):
            ResiliencePolicy(**kwargs)


def test_fault_counters_round_trip_every_field():
    import dataclasses

    from repro.faults import FaultCounters

    names = [f.name for f in dataclasses.fields(FaultCounters)
             if f.name != "extra"]
    # give every counter a distinct value; merge and to_dict must see all
    a = FaultCounters(**{name: i + 1 for i, name in enumerate(names)})
    b = FaultCounters(**{name: 100 for name in names})
    exported = a.to_dict()
    assert set(exported) == set(names)
    assert all(exported[name] == i + 1 for i, name in enumerate(names))
    a.merge(b)
    assert all(getattr(a, name) == i + 101 for i, name in enumerate(names))


# -- PR 5 satellites: rejoin edge coverage -----------------------------------

def _mlp_trainer(plan, world=4, supervised=False, seed=0):
    recipe = get_recipe("mlp")
    task = make_task("mlp", batch_size=recipe.batch_size, **recipe.kwargs())
    config = CGXConfig(compression=CompressionSpec("qsgd", bits=4))
    return DataParallelTrainer(task, world_size=world, config=config,
                               recipe=recipe, seed=seed, fault_plan=plan,
                               supervised=supervised)


def test_adopt_peer_state_with_no_healthy_peer_keeps_stale_weights():
    # rank 1 rejoins while every other rank is dead: there is no
    # adoption source, so the stale weights must survive untouched
    plan = FaultPlan("lonely-rejoin", 2, 0, (crash(rank=1, at=2, rejoin=4),))
    trainer = _mlp_trainer(plan, world=2)
    for _ in range(3):
        trainer.train_step()
    stale = {name: param.data.copy()
             for name, param in trainer.replicas[1].named_parameters()}
    stale_opt = trainer.optimizers[1].state_dict()
    before = len(trainer.fault_runtime.records)
    trainer._adopt_peer_state(1, dead={0})   # sole peer is dead
    for name, param in trainer.replicas[1].named_parameters():
        np.testing.assert_array_equal(param.data, stale[name])
    for key, vel in stale_opt["velocity"].items():
        np.testing.assert_array_equal(
            trainer.optimizers[1].state_dict()["velocity"][key], vel)
    # no state transfer happened (stale-weights path)
    kinds = [r.kind for r in trainer.fault_runtime.records[before:]]
    assert "state_transfer" not in kinds


def test_rank_crashed_from_step_zero_rejoins_later():
    plan = FaultPlan("born-dead", 4, 0, (crash(rank=2, at=0, rejoin=6),))
    trainer = _mlp_trainer(plan)
    losses = [trainer.train_step() for _ in range(10)]
    assert all(np.isfinite(losses))
    # on rejoin the newborn rank adopted a trained peer's state
    records = [r for r in trainer.fault_runtime.records
               if r.kind == "state_transfer"]
    assert len(records) == 1 and dict(records[0].detail)["rank"] == 2
    params2 = dict(trainer.replicas[2].named_parameters())
    for name, param in trainer.replicas[0].named_parameters():
        np.testing.assert_array_equal(param.data, params2[name].data)


# -- PR 5 satellite: checkpoint snapshots are aliasing-safe ------------------

def test_checkpoint_snapshot_survives_live_state_dict_refs(monkeypatch):
    """Even an optimizer whose state_dict leaks live buffers must not let
    later training mutate an earlier checkpoint."""
    trainer = _mlp_trainer(None, world=2)
    for _ in range(3):
        trainer.train_step()

    leaky = trainer.optimizers[0]
    real_state = leaky.state_dict()

    def live_refs():
        # hand back the *live* arrays, not copies
        return {"velocity": leaky._velocity}

    monkeypatch.setattr(leaky, "state_dict", live_refs)
    snapshot = trainer.checkpoint()
    monkeypatch.undo()
    frozen = {k: v.copy() for k, v in snapshot["optimizer"]["velocity"].items()}

    for _ in range(4):
        trainer.train_step()
    # training moved the optimizer on; the snapshot must not have moved
    assert any(not np.array_equal(leaky._velocity[k], frozen[k])
               for k in frozen)
    for k, v in frozen.items():
        np.testing.assert_array_equal(snapshot["optimizer"]["velocity"][k], v)
    del real_state
